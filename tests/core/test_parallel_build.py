"""ch-image build --parallel: determinism under concurrency.

The property the engine must hold: scheduling changes *when* stages run,
never *what* they produce — any parallelism level and any topological
order yield byte-identical images.
"""

import itertools
import json

import pytest

from repro.cas.diff import snapshot_tree
from repro.cas.store import blob_digest
from repro.cluster import make_machine, make_world
from repro.core import ChImage, build_parallel, ch_image_cli

DIAMOND = """\
FROM centos:7 AS base
RUN echo base > /base.txt

FROM base AS left
RUN yum install -y gcc
RUN echo left > /left.txt

FROM base AS right
RUN yum install -y openssh
RUN echo right > /right.txt

FROM base
COPY --from=left /left.txt /l
COPY --from=right /right.txt /r
RUN echo done
"""


def fresh_builder():
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    return ChImage(login, login.login("alice"), force_mode="seccomp",
                   cache=True)


def image_digest(ch: ChImage, tag: str) -> str:
    snap = snapshot_tree(ch.sys, ch.storage.path_of(tag))
    return blob_digest(json.dumps(snap, sort_keys=True).encode())


class TestDeterminism:
    def test_digest_identical_across_parallelism_levels(self):
        digests = set()
        for parallelism in (1, 2, 3, 4):
            ch = fresh_builder()
            r = ch.build(tag="app", dockerfile=DIAMOND, force=True,
                         parallel=parallelism)
            assert r.success, r.text
            digests.add(image_digest(ch, "app"))
        assert len(digests) == 1

    def test_digest_identical_across_topological_orders(self):
        """Permuting tie-break priorities realizes different valid
        topological orders; the image must not notice."""
        digests = set()
        for perm in itertools.permutations(range(4)):
            ch = fresh_builder()
            r = build_parallel(ch, tag="app", dockerfile=DIAMOND,
                               force=True, parallelism=2,
                               priorities=list(perm))
            assert r.success, r.text
            digests.add(image_digest(ch, "app"))
        assert len(digests) == 1

    def test_parallel_matches_sequential_build(self):
        seq = fresh_builder()
        r1 = seq.build(tag="app", dockerfile=DIAMOND, force=True)
        par = fresh_builder()
        r2 = par.build(tag="app", dockerfile=DIAMOND, force=True,
                       parallel=4)
        assert r1.success and r2.success
        assert image_digest(seq, "app") == image_digest(par, "app")
        # intermediate stages too, not just the final tag
        for stage_tag in ("app%stage0", "app%stage1", "app%stage2"):
            assert image_digest(seq, stage_tag) == \
                image_digest(par, stage_tag)

    def test_schedule_report_attached(self):
        ch = fresh_builder()
        r = ch.build(tag="app", dockerfile=DIAMOND, force=True, parallel=2)
        assert r.parallelism == 2
        assert r.makespan > 0.0
        assert 0.0 < r.critical_path <= r.makespan
        assert r.schedule is not None and r.schedule.success
        assert len(r.schedule.tasks) == 4

    def test_overlap_actually_happens(self):
        """left and right must share virtual time on 2+ workers."""
        ch = fresh_builder()
        r = ch.build(tag="app", dockerfile=DIAMOND, force=True, parallel=2)
        by_name = {t.name: t for t in r.schedule.tasks}
        left, right = by_name["app:left"], by_name["app:right"]
        assert left.start < right.finish and right.start < left.finish
        assert {left.worker, right.worker} == {0, 1}


class TestErrorPaths:
    def test_unknown_stage_fails_the_build(self):
        ch = fresh_builder()
        df = DIAMOND.replace("--from=right", "--from=ghost")
        r = ch.build(tag="app", dockerfile=df, force=True, parallel=2)
        assert not r.success
        assert "no such stage" in r.text

    def test_failing_stage_skips_dependents(self):
        ch = fresh_builder()
        df = DIAMOND.replace("yum install -y gcc", "false")
        r = ch.build(tag="app", dockerfile=df, force=True, parallel=2)
        assert not r.success
        states = {t.name: t.state for t in r.schedule.tasks}
        assert states["app:left"] == "failed"
        assert states["app:stage3"] == "skipped"
        assert states["app:right"] in ("done", "skipped")

    def test_bad_parallelism_via_cli(self):
        ch = fresh_builder()
        ch.sys.write_file("/home/alice/Dockerfile", DIAMOND.encode())
        status, text = ch_image_cli(
            ch, ["build", "--parallel", "nope", "-t", "app",
                 "-f", "/home/alice/Dockerfile", "."])
        assert status == 1 and "--parallel" in text


class TestCaseInsensitiveStages:
    """Regression for the case-sensitive FROM <stage> resolution bug."""

    MIXED = """\
FROM centos:7 AS Builder
RUN echo artifact > /opt/app.bin

FROM BUILDER AS Check
RUN cat /opt/app.bin

FROM centos:7
COPY --from=bUiLdEr /opt/app.bin /usr/local/bin/app.bin
RUN cat /usr/local/bin/app.bin
"""

    def test_sequential(self):
        ch = fresh_builder()
        r = ch.build(tag="app", dockerfile=self.MIXED, force=True)
        assert r.success, r.text
        assert "artifact" in r.text

    def test_parallel(self):
        ch = fresh_builder()
        r = ch.build(tag="app", dockerfile=self.MIXED, force=True,
                     parallel=3)
        assert r.success, r.text
        path = ch.storage.path_of("app")
        assert ch.sys.read_file(f"{path}/usr/local/bin/app.bin") == \
            b"artifact\n"


class TestCli:
    def test_build_parallel_flag(self):
        ch = fresh_builder()
        ch.sys.write_file("/home/alice/Dockerfile", DIAMOND.encode())
        status, text = ch_image_cli(
            ch, ["build", "--force", "--parallel", "4", "-t", "app",
                 "-f", "/home/alice/Dockerfile", "."])
        assert status == 0, text
        assert "parallel build: 4 stages on 4 workers" in text
        assert "makespan" in text
