"""Multi-stage Dockerfile builds in ch-image (FROM ... AS + COPY --from)."""

import pytest

from repro.core import ChImage

MULTISTAGE = """\
FROM centos:7 AS builder
RUN yum install -y gcc
RUN echo compiled-artifact > /opt/app.bin

FROM centos:7
COPY --from=builder /opt/app.bin /usr/local/bin/app.bin
RUN cat /usr/local/bin/app.bin
"""


@pytest.fixture
def ch(login, alice):
    return ChImage(login, alice, force_mode="seccomp")


class TestMultiStage:
    def test_builds(self, ch):
        r = ch.build(tag="app", dockerfile=MULTISTAGE, force=True)
        assert r.success, r.text

    def test_artifact_copied_from_builder_stage(self, ch):
        r = ch.build(tag="app", dockerfile=MULTISTAGE, force=True)
        assert r.success
        path = ch.storage.path_of("app")
        assert ch.sys.read_file(f"{path}/usr/local/bin/app.bin") == \
            b"compiled-artifact\n"
        assert "compiled-artifact" in r.text  # final RUN saw it

    def test_builder_tools_not_in_final_image(self, ch):
        """The point of multi-stage: gcc stays in the builder stage."""
        r = ch.build(tag="app", dockerfile=MULTISTAGE, force=True)
        assert r.success
        path = ch.storage.path_of("app")
        assert not ch.sys.exists(f"{path}/usr/bin/gcc")
        builder_path = ch.storage.path_of("app%stage0")
        assert ch.sys.exists(f"{builder_path}/usr/bin/gcc")

    def test_copy_from_index(self, ch):
        df = MULTISTAGE.replace("--from=builder", "--from=0")
        r = ch.build(tag="app", dockerfile=df, force=True)
        assert r.success, r.text

    def test_copy_from_unknown_stage(self, ch):
        df = MULTISTAGE.replace("--from=builder", "--from=wrong")
        r = ch.build(tag="app", dockerfile=df, force=True)
        assert not r.success
        assert "no such stage" in r.text

    def test_from_stage_by_name(self, ch):
        df = ("FROM centos:7 AS base\nRUN echo marker > /marker\n"
              "FROM base\nRUN cat /marker\n")
        r = ch.build(tag="chain", dockerfile=df, force=True)
        assert r.success, r.text
        assert "marker" in r.text

    def test_instruction_numbering_continues(self, ch):
        r = ch.build(tag="app", dockerfile=MULTISTAGE, force=True)
        assert "  4 FROM centos:7" in r.text
        assert "grown in 6 instructions: app" in r.text

    def test_single_stage_unaffected(self, login, alice):
        ch_plain = ChImage(login, alice)
        r = ch_plain.build(tag="one",
                           dockerfile="FROM centos:7\nRUN echo hi\n")
        assert r.success
        assert "grown in 2 instructions: one" in r.text
