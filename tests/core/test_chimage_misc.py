"""ch-image storage, push flattening, ch-run, force detection, CLI."""

import pytest

from repro.archive import TarArchive
from repro.containers import ImageRef
from repro.core import (
    ChImage,
    ChRun,
    DEBDERIV,
    RHEL7,
    ch_image_cli,
    detect_config,
    push_image,
)
from repro.fakeroot import FAKEROOT_CLASSIC, FakerootSyscalls
from repro.kernel import Syscalls
from tests.conftest import FIG2_DOCKERFILE


@pytest.fixture
def ch(login, alice):
    return ChImage(login, alice)


class TestStorage:
    def test_pull_flattens_to_user(self, ch):
        path = ch.pull("centos:7")
        st = ch.sys.stat(f"{path}/etc/redhat-release")
        assert (st.kuid, st.kgid) == (1000, 1000)

    def test_pull_idempotent(self, ch):
        assert ch.pull("centos:7") == ch.pull("centos:7")

    def test_list_and_delete(self, ch):
        ch.pull("centos:7")
        assert "centos:7" in ch.storage.list_images()
        ch.storage.delete("centos:7")
        assert "centos:7" not in ch.storage.list_images()

    def test_copy_is_independent(self, ch):
        ch.pull("centos:7")
        ch.storage.copy("centos:7", "work")
        work = ch.storage.path_of("work")
        ch.sys.write_file(f"{work}/marker", b"x")
        base = ch.storage.path_of("centos:7")
        assert not ch.sys.exists(f"{base}/marker")

    def test_storage_dir_layout(self, ch):
        ch.pull("centos:7")
        assert ch.storage.root == "/var/tmp/alice.ch"
        assert ch.sys.exists("/var/tmp/alice.ch/img/centos+7")


class TestForceDetection:
    def test_rhel7_matches_centos(self, ch):
        path = ch.pull("centos:7")
        assert detect_config(ch.sys, path) is RHEL7

    def test_debderiv_matches_buster(self, ch):
        path = ch.pull("debian:buster")
        assert detect_config(ch.sys, path) is DEBDERIV

    def test_no_match(self, ch):
        path = ch.pull("centos:7")
        ch.sys.unlink(f"{path}/etc/redhat-release")
        assert detect_config(ch.sys, path) is None

    def test_rhel7_regex_is_specific(self, ch):
        path = ch.pull("centos:7")
        ch.sys.write_file(f"{path}/etc/redhat-release",
                          b"CentOS Linux release 8.4\n")
        assert detect_config(ch.sys, path) is None

    def test_run_keywords(self):
        assert RHEL7.run_modifiable("yum install -y x")
        assert RHEL7.run_modifiable("rpm -i pkg.rpm")
        assert not RHEL7.run_modifiable("echo hello")
        assert DEBDERIV.run_modifiable("apt-get update")
        assert not DEBDERIV.run_modifiable("make install")


class TestPush:
    def test_push_flattens_ownership(self, ch, world):
        """§6.1: push changes ownership to root:root and clears
        setuid/setgid bits to avoid leaking site IDs."""
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        push_image(ch.storage, "foo", "gitlab.example.gov/alice/foo:v1")
        config, layers = world.site_registry.pull("alice/foo:v1")
        assert len(layers) == 1  # single layer, unlike Podman
        for m in layers[0]:
            assert (m.uid, m.gid) == (0, 0)
            assert not m.mode & 0o6000

    def test_fakeroot_remains_in_image(self, ch, world):
        """§6.1 complication: 'fakeroot(1) is installed into the image'."""
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        push_image(ch.storage, "foo", "gitlab.example.gov/alice/foo:v1")
        _, layers = world.site_registry.pull("alice/foo:v1")
        assert any(m.path == "usr/bin/fakeroot" for m in layers[0])

    def test_ownership_preserving_push(self, ch, alice, world):
        """§6.2.2 extension: push using fakeroot's lie database."""
        path = ch.pull("centos:7")
        fr = FakerootSyscalls(Syscalls(alice), FAKEROOT_CLASSIC)
        fr.write_file(f"{path}/srv-file", b"x")
        fr.chown(f"{path}/srv-file", 48, 48)
        push_image(ch.storage, "centos:7",
                   "gitlab.example.gov/alice/keep:v1", fakeroot_db=fr.db)
        _, layers = world.site_registry.pull("alice/keep:v1")
        member = layers[0].member("srv-file")
        assert (member.uid, member.gid) == (48, 48)

    def test_push_unknown_image(self, ch):
        from repro.errors import RegistryError
        with pytest.raises(RegistryError):
            push_image(ch.storage, "nope", "gitlab.example.gov/a/b:1")


class TestChRun:
    def test_run_in_pulled_image(self, ch, login, alice):
        path = ch.pull("centos:7")
        run = ChRun(login, alice)
        res = run.run(path, ["cat", "/etc/redhat-release"])
        assert res.status == 0
        assert "CentOS Linux release 7" in res.output

    def test_identity_is_container_root(self, ch, login, alice):
        path = ch.pull("centos:7")
        res = ChRun(login, alice).run(path, ["id", "-u"])
        assert res.output.strip() == "0"

    def test_bind_mount(self, ch, login, alice):
        Syscalls(alice).write_file("/home/alice/data.txt", b"input")
        path = ch.pull("centos:7")
        ch.sys.mkdir_p(f"{path}/mnt")
        res = ChRun(login, alice).run(
            path, ["cat", "/mnt/data.txt"],
            binds=[("/home/alice", "/mnt")])
        assert res.status == 0
        assert res.output == "input"

    def test_bad_image_path(self, login, alice):
        res = ChRun(login, alice).run("/no/such/dir", ["true"])
        assert res.status == 125

    def test_container_cannot_touch_host_etc(self, ch, login, alice):
        """Type III safety: container root is powerless on the host."""
        path = ch.pull("centos:7")
        ch.sys.mkdir_p(f"{path}/host-etc")
        res = ChRun(login, alice).run(
            path, ["/bin/sh", "-c", "echo pwned > /host-etc/motd"],
            binds=[("/etc", "/host-etc")])
        assert res.status != 0
        host_sys = Syscalls(login.kernel.init_process)
        assert not host_sys.exists("/etc/motd")


class TestCli:
    def test_build_via_cli(self, ch, alice):
        Syscalls(alice).write_file("/home/alice/centos7.dockerfile",
                                   FIG2_DOCKERFILE.encode())
        status, out = ch_image_cli(
            ch, ["build", "--force", "-t", "foo", "-f",
                 "/home/alice/centos7.dockerfile", "."])
        assert status == 0
        assert "grown in 3 instructions: foo" in out

    def test_build_failure_status(self, ch, alice):
        Syscalls(alice).write_file("/home/alice/centos7.dockerfile",
                                   FIG2_DOCKERFILE.encode())
        status, out = ch_image_cli(
            ch, ["build", "-t", "foo", "-f",
                 "/home/alice/centos7.dockerfile", "."])
        assert status == 1
        assert "cpio: chown" in out

    def test_pull_list_delete(self, ch):
        status, out = ch_image_cli(ch, ["pull", "centos:7"])
        assert status == 0
        status, out = ch_image_cli(ch, ["list"])
        assert "centos:7" in out
        status, _ = ch_image_cli(ch, ["delete", "centos:7"])
        assert status == 0

    def test_push_via_cli(self, ch, alice, world):
        ch_image_cli(ch, ["pull", "centos:7"])
        status, out = ch_image_cli(
            ch, ["push", "centos:7", "gitlab.example.gov/alice/c7:1"])
        assert status == 0
        assert "1 layer" in out

    def test_usage_errors(self, ch):
        assert ch_image_cli(ch, [])[0] == 1
        assert ch_image_cli(ch, ["build"])[0] == 1
        assert ch_image_cli(ch, ["frobnicate"])[0] == 1
        assert ch_image_cli(ch, ["pull"])[0] == 1
