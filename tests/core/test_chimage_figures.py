"""ch-image reproduction of the paper's figure transcripts (2, 3, 8-11)."""

import pytest

from repro.core import ChImage
from tests.conftest import (
    FIG2_DOCKERFILE,
    FIG3_DOCKERFILE,
    FIG8_DOCKERFILE,
    FIG9_DOCKERFILE,
)


@pytest.fixture
def ch(login, alice):
    return ChImage(login, alice)


class TestFigure2:
    """Plain Type III build of the CentOS Dockerfile fails at cpio: chown."""

    def test_fails(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE)
        assert not r.success

    def test_transcript_lines(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE)
        text = r.text
        assert "  1 FROM centos:7" in text
        assert "  2 RUN ['/bin/sh', '-c', 'echo hello']" in text
        assert "hello" in text
        assert "  3 RUN ['/bin/sh', '-c', 'yum install -y openssh']" in text
        assert "Installing: openssh-7.4p1-21.el7.x86_64" in text
        assert "Error unpacking rpm package openssh-7.4p1-21.el7.x86_64" \
            in text
        assert "cpio: chown" in text
        assert "error: build failed: RUN command exited with 1" in text

    def test_force_suggested(self, ch):
        """The paper notes ch-image 'suggested --force in a transcript line
        omitted from Figure 2'."""
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE)
        assert "--force" in r.text.splitlines()[-1]


class TestFigure3:
    """Plain Type III Debian build fails in apt's privilege drop."""

    def test_fails_with_exact_errors(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE)
        assert not r.success
        text = r.text
        assert ("E: setgroups 65534 failed - setgroups "
                "(1: Operation not permitted)") in text
        assert ("E: seteuid 100 failed - seteuid "
                "(22: Invalid argument)") in text
        assert "error: build failed: RUN command exited with 100" in text

    def test_fails_before_install_step(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE)
        assert "  3 RUN ['/bin/sh', '-c', 'apt-get update']" in r.text
        assert "  4 RUN" not in r.text  # never got there


class TestFigure8:
    """Manually modified CentOS Dockerfile builds (fakeroot by hand)."""

    def test_succeeds(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG8_DOCKERFILE)
        assert r.success, r.text
        assert r.text.count("Complete!") >= 3
        assert "grown in 5 instructions: foo" in r.text

    def test_plain_yum_steps_need_no_fakeroot(self, ch):
        """Steps 1-2 (epel-release, fakeroot) install with no wrapper."""
        r = ch.build(tag="foo", dockerfile=FIG8_DOCKERFILE)
        lines = r.text.splitlines()
        epel_idx = next(i for i, l in enumerate(lines)
                        if "epel-release']" in l)
        assert "fakeroot" not in lines[epel_idx]

    def test_ownership_squashed_to_user(self, ch, alice):
        """§5.2: 'this approach will squash the actual ownership of all
        files installed to the invoking user'."""
        r = ch.build(tag="foo", dockerfile=FIG8_DOCKERFILE)
        assert r.success
        path = ch.storage.path_of("foo")
        st = ch.sys.stat(f"{path}/usr/libexec/openssh/ssh-keysign")
        assert st.kuid == 1000 and st.kgid == 1000


class TestFigure9:
    """Manually modified Debian Dockerfile builds (sandbox off + pseudo)."""

    def test_succeeds_with_term_log_warning(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG9_DOCKERFILE)
        assert r.success, r.text
        text = r.text
        assert "Setting up pseudo (1.9.0+git20180920-1) ..." in text
        assert "W: chown to root:adm of file /var/log/apt/term.log failed" \
            in text
        assert "Setting up openssh-client (1:7.9p1-10+deb10u2) ..." in text
        assert "grown in 6 instructions: foo" in text

    def test_warning_does_not_fail_build(self, ch):
        """'These warnings do not fail the build' (§5.2)."""
        r = ch.build(tag="foo", dockerfile=FIG9_DOCKERFILE)
        assert r.success and r.exit_status == 0


class TestFigure10:
    """ch-image --force auto-injection, CentOS."""

    def test_succeeds(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success, r.text

    def test_transcript_lines(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        text = r.text
        assert "will use --force: rhel7: CentOS/RHEL 7" in text
        assert ("workarounds: init step 1: checking: $ command -v fakeroot "
                "> /dev/null") in text
        assert "yum --enablerepo=epel install -y fakeroot" in text
        assert ("workarounds: RUN: new command: ['fakeroot', '/bin/sh', "
                "'-c', 'yum install -y openssh']") in text
        assert "--force: init OK & modified 1 RUN instructions" in text
        assert "grown in 3 instructions: foo" in text

    def test_echo_run_not_modified(self, ch):
        """'ch-image executes the first RUN instruction normally, because it
        doesn't seem to need modification' (§5.3.1)."""
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert "'-c', 'echo hello']" in r.text
        assert "new command: ['fakeroot', '/bin/sh', '-c', 'echo hello']" \
            not in r.text

    def test_epel_left_disabled(self, ch):
        """EPEL is installed but disabled to avoid unexpected upgrades."""
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        path = ch.storage.path_of("foo")
        raw = ch.sys.read_file(f"{path}/etc/yum.repos.d/epel.repo").decode()
        assert "enabled=0" in raw

    def test_init_runs_once_for_multiple_runs(self, ch):
        df = ("FROM centos:7\nRUN yum install -y gcc\n"
              "RUN yum install -y openssh\n")
        r = ch.build(tag="multi", dockerfile=df, force=True)
        assert r.success, r.text
        assert r.text.count("workarounds: init step 1: $") == 1
        assert r.modified_runs == 2


class TestFigure11:
    """ch-image --force auto-injection, Debian."""

    def test_succeeds(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE, force=True)
        assert r.success, r.text

    def test_transcript_lines(self, ch):
        r = ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE, force=True)
        text = r.text
        assert ("will use --force: debderiv: Debian (9, 10) or "
                "Ubuntu (16, 18, 20)") in text
        assert ("workarounds: init step 1: $ echo 'APT::Sandbox::User "
                "\"root\";' > /etc/apt/apt.conf.d/no-sandbox") in text
        assert ("workarounds: init step 2: $ apt-get update && apt-get "
                "install -y pseudo") in text
        assert "Setting up pseudo (1.9.0+git20180920-1) ..." in text
        assert ("workarounds: RUN: new command: ['fakeroot', '/bin/sh', "
                "'-c', 'apt-get update']") in text
        assert ("workarounds: RUN: new command: ['fakeroot', '/bin/sh', "
                "'-c', 'apt-get install -y openssh-client']") in text
        assert "--force: init OK & modified 2 RUN instructions" in text
        assert "grown in 4 instructions: foo" in text

    def test_redundant_update_still_executed(self, ch):
        """'ch-image is not smart enough to notice that it's now redundant
        and could have been skipped' (§5.3.2): apt-get update runs again
        under fakeroot after init already ran it."""
        r = ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE, force=True)
        assert r.text.count("Reading package lists...") >= 3

    def test_force_without_config_match(self, ch, login, alice):
        """An image with no matching distro config."""
        # scratch-like image: pull centos, remove the marker file
        ch.pull("centos:7")
        path = ch.storage.path_of("centos:7")
        ch.sys.unlink(f"{path}/etc/redhat-release")
        ch.sys.unlink(f"{path}/etc/os-release")
        r = ch.build(tag="x", dockerfile="FROM centos:7\nRUN true\n",
                     force=True)
        assert "no suitable configuration found" in r.text
        assert r.success  # nothing needed modification anyway
