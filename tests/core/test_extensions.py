"""Tests for the §6.2 future-work features implemented as extensions:
ch-image build cache, §6.2.4 kernel auto-maps, §6.2.5 registry policy."""

import pytest

from repro.containers import Podman, Registry
from repro.core import ChImage, push_image
from repro.errors import KernelError, RegistryError
from repro.kernel import IdMapEntry, Syscalls
from tests.conftest import FIG2_DOCKERFILE


class TestChImageBuildCache:
    """§6.2.2: 'Charliecloud-specific improvements like ... build caching'."""

    def test_cache_hit_skips_execution(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        r1 = ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r1.success, r1.text
        r2 = ch.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r2.success
        assert r2.text.count("RUN: using build cache") == 2
        assert "Installing: openssh" not in r2.text  # yum never re-ran

    def test_cached_result_is_correct(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        ch.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        path = ch.storage.path_of("b")
        assert ch.sys.exists(f"{path}/usr/bin/ssh")

    def test_prefix_change_invalidates(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        changed = FIG2_DOCKERFILE.replace("echo hello", "echo changed")
        r = ch.build(tag="c", dockerfile=changed, force=True)
        assert r.success
        assert "using build cache" not in r.text.split("yum install")[0] or \
            r.text.count("RUN: using build cache") < 2

    def test_force_flag_partitions_cache(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        r = ch.build(tag="d", dockerfile=FIG2_DOCKERFILE, force=False)
        assert not r.success  # no cache hit from the forced build

    def test_default_is_no_cache(self, login, alice):
        ch = ChImage(login, alice)
        ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        r = ch.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        assert "using build cache" not in r.text
        assert ch.cache is None

    def test_result_counts_hits(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        r1 = ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r1.cache_hits == 0
        r2 = ch.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r2.cache_hits == 2


class TestBuildCacheSubsystem:
    """The CAS-backed cache: COPY caching, sharing, export/import, GC."""

    COPY_DOCKERFILE = """\
FROM centos:7
COPY /home/alice/hello.txt /opt/
RUN echo hello
"""

    def test_copy_instruction_is_cached(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        ch.sys.write_file("/home/alice/hello.txt", b"hi")
        r1 = ch.build(tag="a", dockerfile=self.COPY_DOCKERFILE)
        assert r1.success, r1.text
        r2 = ch.build(tag="b", dockerfile=self.COPY_DOCKERFILE)
        assert r2.success
        assert r2.text.count("COPY: using build cache") == 1
        assert r2.cache_hits == 2  # the COPY and the RUN
        assert ch.sys.read_file(
            ch.storage.path_of("b") + "/opt/hello.txt") == b"hi"

    def test_copy_content_change_invalidates(self, login, alice):
        """Same instruction text, different bytes: the context digest in
        the key forces a miss (BuildKit context hashing)."""
        ch = ChImage(login, alice, cache=True)
        ch.sys.write_file("/home/alice/hello.txt", b"one")
        ch.build(tag="a", dockerfile=self.COPY_DOCKERFILE)
        ch.sys.write_file("/home/alice/hello.txt", b"two")
        r = ch.build(tag="b", dockerfile=self.COPY_DOCKERFILE)
        assert r.success
        assert "COPY: using build cache" not in r.text
        assert ch.sys.read_file(
            ch.storage.path_of("b") + "/opt/hello.txt") == b"two"

    def test_shared_cache_across_users(self, login):
        """One machine-wide BuildCache: bob hits on alice's instructions
        (keys root in the base image's manifest digest, not in any
        user-local state)."""
        from repro.cas import BuildCache
        shared = BuildCache()
        alice = login.login("alice")
        bob = login.login("bob")
        ch_a = ChImage(login, alice, cache=True, build_cache=shared)
        ch_b = ChImage(login, bob, cache=True, build_cache=shared)
        r1 = ch_a.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r1.success
        r2 = ch_b.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r2.success
        assert r2.cache_hits == 2

    def test_export_import_hits_in_fresh_builder(self, login, alice):
        """The acceptance path: export from one ChImage, import into a
        fresh one (own storage, own cache) — every unchanged instruction
        hits."""
        from repro.containers import Registry
        ch1 = ChImage(login, alice, cache=True)
        r1 = ch1.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r1.success
        registry = Registry("site")
        ch1.cache.export_to_registry(registry, "alice/cache:latest")

        ch2 = ChImage(login, alice, storage_dir="/var/tmp/alice2.ch",
                      cache=True)
        ch2.cache.import_from_registry(registry, "alice/cache:latest")
        r2 = ch2.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r2.success
        assert r2.cache_hits == 2
        assert r2.text.count("RUN: using build cache") == 2
        # and the imported result is real: the install happened
        assert ch2.sys.exists(ch2.storage.path_of("a") + "/usr/bin/ssh")

    def test_eviction_degrades_to_miss_not_failure(self, login, alice):
        ch = ChImage(login, alice, cache=True, cache_max_bytes=1)
        r1 = ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r1.success
        r2 = ch.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r2.success  # everything re-ran; nothing broke
        assert ch.cache.stats.dropped_records > 0

    def test_cache_metrics_and_spans(self, login, alice):
        ch = ChImage(login, alice, cache=True)
        tracer = ch.enable_tracing()
        ch.build(tag="a", dockerfile=FIG2_DOCKERFILE, force=True)
        ch.build(tag="b", dockerfile=FIG2_DOCKERFILE, force=True)
        m = tracer.metrics.snapshot()["cache"]
        assert m["miss"] == 2 and m["store"] == 2 and m["hit"] == 2
        cache_spans = [s for root in tracer.roots for s in root.walk()
                       if s.kind == "cache"]
        assert any(s.meta.get("result") == "hit" for s in cache_spans)


class TestBuildCacheCli:
    def _build(self, login, alice, *, cache=True):
        from repro.core.cli import ch_image_cli
        ch = ChImage(login, alice, cache=cache)
        ch.sys.write_file("/home/alice/Dockerfile",
                          FIG2_DOCKERFILE.encode())
        status, out = ch_image_cli(
            ch, ["build", "--force", "-t", "a", "-f",
                 "/home/alice/Dockerfile", "."])
        assert status == 0, out
        return ch

    def test_summary_and_tree(self, login, alice):
        from repro.core.cli import ch_image_cli
        ch = self._build(login, alice)
        status, out = ch_image_cli(ch, ["build-cache"])
        assert status == 0 and "records:       2" in out
        status, tree = ch_image_cli(ch, ["build-cache", "--tree"])
        assert status == 0
        assert "RUN yum install -y openssh" in tree
        assert "(a)" in tree  # the tag marks the chain tip

    def test_delete_untags_and_gc_reclaims(self, login, alice):
        from repro.core.cli import ch_image_cli
        ch = self._build(login, alice)
        status, out = ch_image_cli(ch, ["build-cache", "--gc"])
        assert status == 0 and "0 records" in out  # tag keeps it alive
        status, _ = ch_image_cli(ch, ["delete", "a"])
        assert status == 0
        status, out = ch_image_cli(ch, ["build-cache", "--gc"])
        assert status == 0 and "2 records" in out
        assert ch.cache.store.blob_count == 0

    def test_reset(self, login, alice):
        from repro.core.cli import ch_image_cli
        ch = self._build(login, alice)
        status, out = ch_image_cli(ch, ["build-cache", "--reset"])
        assert status == 0 and "dropped 2 records" in out
        assert not ch.cache.records

    def test_export_import_via_cli(self, login, alice):
        from repro.core.cli import ch_image_cli
        ch = self._build(login, alice)
        ref = "gitlab.example.gov/alice/cache:latest"
        status, out = ch_image_cli(ch, ["build-cache", "export", ref])
        assert status == 0 and "exported 2 records" in out

        ch2 = ChImage(login, login.login("bob"), cache=True)
        status, out = ch_image_cli(ch2, ["build-cache", "import", ref])
        assert status == 0 and "imported 2 records" in out
        assert ch2.cache.keys() == ch.cache.keys()

    def test_disabled_cache_errors(self, login, alice):
        from repro.core.cli import ch_image_cli
        ch = ChImage(login, alice)
        status, out = ch_image_cli(ch, ["build-cache"])
        assert status == 1 and "not enabled" in out


class TestAutoSubUserns:
    """§6.2.4: kernel-provided guaranteed-unique ID maps, no helpers."""

    def test_disabled_by_default(self, login, alice):
        sys = Syscalls(alice.fork())
        sys.unshare_user()
        start, count = login.kernel.autosub_range(1000)
        with pytest.raises(KernelError):
            sys.write_uid_map([IdMapEntry(0, 1000, 1),
                               IdMapEntry(1, start, count)])

    def test_enabled_grants_full_map(self, login, alice):
        login.kernel.sysctl["user.autosub_userns"] = 1
        sys = Syscalls(alice.fork())
        ns = sys.setup_auto_userns()
        assert sys.geteuid() == 0
        start, _ = login.kernel.autosub_range(1000)
        assert ns.uid_to_host(1) == start
        assert ns.uid_to_host(65535) == start + 65534

    def test_ranges_unique_per_user(self, login):
        login.kernel.sysctl["user.autosub_userns"] = 1
        a = login.kernel.autosub_range(1000)
        b = login.kernel.autosub_range(1001)
        assert a[0] + a[1] <= b[0]  # disjoint by construction

    def test_wrong_range_still_rejected(self, login, alice):
        """Only the caller's own kernel-derived range is granted."""
        login.kernel.sysctl["user.autosub_userns"] = 1
        sys = Syscalls(alice.fork())
        sys.unshare_user()
        other_start, count = login.kernel.autosub_range(1001)  # bob's!
        with pytest.raises(KernelError):
            sys.write_uid_map([IdMapEntry(0, 1000, 1),
                               IdMapEntry(1, other_start, count)])

    def test_gid_map_requires_setgroups_deny(self, login, alice):
        """The §2.1.4 trap stays closed even with kernel grants."""
        login.kernel.sysctl["user.autosub_userns"] = 1
        sys = Syscalls(alice.fork())
        sys.unshare_user()
        start, count = login.kernel.autosub_range(1000)
        sys.write_uid_map([IdMapEntry(0, 1000, 1),
                           IdMapEntry(1, start, count)])
        with pytest.raises(KernelError):
            sys.write_gid_map([IdMapEntry(0, 1000, 1),
                               IdMapEntry(1, start, count)])
        sys.deny_setgroups()
        sys.write_gid_map([IdMapEntry(0, 1000, 1),
                           IdMapEntry(1, start, count)])

    def test_chimage_auto_map_builds_without_fakeroot(self, login, alice):
        """The payoff: with future-kernel maps, the Figure 2 Dockerfile
        builds unprivileged with NO fakeroot and NO --force — 'eliminating
        the need for Type II privileged code or Type III wrappers'."""
        login.kernel.sysctl["user.autosub_userns"] = 1
        ch = ChImage(login, alice, auto_map=True)
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=False)
        assert r.success, r.text
        assert "fakeroot" not in r.text
        # correct in-image ownership, stored at kernel-granted host IDs
        path = ch.storage.path_of("foo")
        st = ch.sys.stat(f"{path}/usr/libexec/openssh/ssh-keysign")
        start, _ = login.kernel.autosub_range(1000)
        assert st.kgid >= start

    def test_auto_map_without_sysctl_fails_gracefully(self, login, alice):
        ch = ChImage(login, alice, auto_map=True)
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE)
        assert not r.success


class TestRegistryOwnershipPolicy:
    """§6.2.5: explicit marking of ownership-flattened images."""

    def test_flattened_push_accepted(self, login, alice, world):
        world.site_registry.set_repo_policy("alice/safe",
                                            require_flattened=True)
        ch = ChImage(login, alice)
        assert ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE,
                        force=True).success
        push_image(ch.storage, "foo", "gitlab.example.gov/alice/safe:v1")
        assert world.site_registry.has("alice/safe:v1")

    def test_unflattened_push_rejected(self, login, alice, world):
        world.site_registry.set_repo_policy("alice/safe",
                                            require_flattened=True)
        podman = Podman(login, alice)
        assert podman.build(FIG2_DOCKERFILE, "foo").success
        with pytest.raises(RegistryError) as exc:
            podman.push("foo", "gitlab.example.gov/alice/safe:v1")
        assert "ownership-flattened" in str(exc.value)

    def test_policy_scoped_per_repo(self, login, alice, world):
        world.site_registry.set_repo_policy("alice/safe",
                                            require_flattened=True)
        podman = Podman(login, alice)
        assert podman.build(FIG2_DOCKERFILE, "foo").success
        podman.push("foo", "gitlab.example.gov/alice/other:v1")  # fine
