"""Spack-like source builds (§5.3.3): the proof that HPC *application*
stacks need no build privilege — only distribution packaging does."""

import pytest

from repro.containers import enter_container
from repro.core import ChImage, ChRun
from repro.shell import OutputSink, execute

SPACK_DOCKERFILE = """\
FROM centos:7
RUN yum install -y gcc spack
RUN spack install lammps
"""


def sh(ctx, cmd):
    sink = OutputSink()
    status = execute(ctx.child(stdout=sink, stderr=sink),
                     ["/bin/sh", "-c", cmd])
    return status, sink.text()


@pytest.fixture
def ctr(login, alice):
    ch = ChImage(login, alice)
    tree = ch.pull("centos:7")
    ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
    st, out = sh(ctx, "yum install -y gcc spack")
    assert st == 0, out
    return ctx


class TestSpack:
    def test_install_with_dependencies(self, ctr):
        st, out = sh(ctr, "spack install hdf5")
        assert st == 0, out
        for dep in ("zlib", "openmpi", "hdf5"):
            assert f"==> Installing {dep}@" in out

    def test_find_lists_installed(self, ctr):
        sh(ctr, "spack install zlib")
        st, out = sh(ctr, "spack find")
        assert st == 0
        assert "zlib@1.2.11" in out

    def test_idempotent(self, ctr):
        sh(ctr, "spack install zlib")
        st, out = sh(ctr, "spack install zlib")
        assert st == 0
        assert "Installing" not in out  # nothing to do

    def test_requires_compiler(self, login, alice):
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
        sh(ctx, "yum install -y spack")  # spack but no gcc
        st, out = sh(ctx, "spack install zlib")
        assert st == 1
        assert "No compilers available" in out

    def test_unknown_spec(self, ctr):
        st, out = sh(ctr, "spack install left-pad")
        assert st == 1 and "unknown package" in out

    def test_artifacts_owned_by_user_no_privilege(self, ctr):
        """The §5.3.3 punchline: the whole stack lands under the invoking
        user's ownership; no chown, no fakeroot, no failures."""
        st, _ = sh(ctr, "spack install lammps")
        assert st == 0
        st = ctr.sys.stat("/opt/spack/lammps-2021.05/bin/lmp")
        assert st.kuid == 1000


class TestSpackInBuild:
    def test_full_dockerfile_without_force(self, login, alice):
        """A Spack-stack Dockerfile builds WITHOUT --force — contrast with
        Figure 2's distro-package failure."""
        ch = ChImage(login, alice)
        r = ch.build(tag="lmp", dockerfile=SPACK_DOCKERFILE)
        assert r.success, r.text
        assert "fakeroot" not in r.text

    def test_built_app_runs_under_chrun(self, login, alice):
        ch = ChImage(login, alice)
        r = ch.build(tag="lmp", dockerfile=SPACK_DOCKERFILE)
        assert r.success
        res = ChRun(login, alice).run(
            ch.storage.path_of("lmp"),
            ["mpirun", "-np", "2", "lmp"],
            env={"PATH": "/usr/bin:/bin"})
        assert res.status == 0, res.output
        assert "rank 0/2" in res.output
        assert "rank 1/2" in res.output
