"""Unit tests for the package model, dependency resolver, and repositories."""

import pytest

from repro.distro import (
    Package,
    PackageDb,
    PackageFile,
    PackageUniverse,
    Repository,
    make_universe,
    resolve_dependencies,
)
from repro.errors import PackageError
from repro.kernel import Kernel, Syscalls, make_ext4


def pkg(name, *requires):
    return Package(name=name, version="1.0", requires=tuple(requires))


class TestDependencyResolution:
    def test_simple_order(self):
        available = {p.name: p for p in
                     [pkg("a"), pkg("b", "a"), pkg("c", "b")]}
        order = resolve_dependencies(["c"], available, {})
        assert [p.name for p in order] == ["a", "b", "c"]

    def test_installed_skipped(self):
        available = {p.name: p for p in [pkg("a"), pkg("b", "a")]}
        order = resolve_dependencies(["b"], available, {"a": "1.0"})
        assert [p.name for p in order] == ["b"]

    def test_diamond(self):
        available = {p.name: p for p in
                     [pkg("base"), pkg("l", "base"), pkg("r", "base"),
                      pkg("top", "l", "r")]}
        order = resolve_dependencies(["top"], available, {})
        names = [p.name for p in order]
        assert names.index("base") < names.index("l")
        assert names.index("base") < names.index("r")
        assert names[-1] == "top"

    def test_unknown_package(self):
        with pytest.raises(PackageError):
            resolve_dependencies(["nope"], {}, {})

    def test_cycle_detected(self):
        available = {p.name: p for p in [pkg("a", "b"), pkg("b", "a")]}
        with pytest.raises(PackageError) as exc:
            resolve_dependencies(["a"], available, {})
        assert "cycle" in str(exc.value)


class TestPackageDb:
    @pytest.fixture
    def db(self):
        k = Kernel(make_ext4())
        return PackageDb(Syscalls(k.init_process), "/var/lib/rpm/packages")

    def test_empty(self, db):
        assert db.installed() == {}
        assert not db.is_installed("x")

    def test_add_remove(self, db):
        db.add(pkg("openssh"))
        assert db.is_installed("openssh")
        assert db.installed()["openssh"] == "1.0"
        db.remove("openssh")
        assert not db.is_installed("openssh")

    def test_persistence_in_file(self, db):
        db.add(pkg("zlib"))
        raw = db.sys.read_file("/var/lib/rpm/packages").decode()
        assert "zlib|1.0" in raw


class TestRepository:
    def test_fetch_logged(self):
        r = Repository("test/repo", "Test").add(pkg("a"))
        r.fetch("a")
        r.fetch("a")
        assert r.fetch_log == ["a", "a"]

    def test_missing_package(self):
        r = Repository("test/repo", "Test")
        with pytest.raises(PackageError):
            r.get("nope")

    def test_universe_lookup(self):
        u = PackageUniverse()
        u.add_repo(Repository("d/main", "D"))
        assert u.repo("d/main").name == "D"
        assert u.repo("repo://d/main").name == "D"
        assert u.has_repo("repo://d/main")
        with pytest.raises(PackageError):
            u.repo("other/repo")


class TestCatalog:
    def test_universe_has_all_repos(self):
        u = make_universe()
        for arch in ("x86_64", "aarch64"):
            assert u.has_repo(f"centos7/base-{arch}")
            assert u.has_repo(f"centos7/epel-{arch}")
            assert u.has_repo(f"debian10/main-{arch}")

    def test_openssh_has_foreign_group_payload(self):
        """The Figure 2 trigger must exist: a payload file owned by a
        non-root group."""
        u = make_universe()
        openssh = u.repo("centos7/base-x86_64").get("openssh")
        assert any(f.group == "ssh_keys" for f in openssh.files)
        assert openssh.pre_script and "ssh_keys" in openssh.pre_script

    def test_fakeroot_lives_in_epel_only(self):
        u = make_universe()
        assert not u.repo("centos7/base-x86_64").has("fakeroot")
        assert u.repo("centos7/epel-x86_64").has("fakeroot")

    def test_nevra_format(self):
        u = make_universe()
        openssh = u.repo("centos7/base-x86_64").get("openssh")
        assert openssh.nevra == "openssh-7.4p1-21.el7.x86_64"

    def test_arch_specific_binaries(self):
        u = make_universe()
        atse = u.repo("centos7/base-aarch64").get("atse")
        execs = [f for f in atse.files if f.exe_impl]
        assert execs and all(f.exe_arch == "aarch64" for f in execs)

    def test_debian_pseudo_provides_fakeroot_command(self):
        u = make_universe()
        pseudo = u.repo("debian10/main-x86_64").get("pseudo")
        assert any(f.path == "/usr/bin/fakeroot" for f in pseudo.files)


class TestPackageValidation:
    """The satellite regression: ``|`` or a newline in a package name
    used to silently corrupt the line-oriented ``name|version`` database
    (and poison every SBOM built from it).  Construction now rejects."""

    @pytest.mark.parametrize("name", ["evil|pkg", "two\nlines", "cr\rname"])
    def test_delimiter_in_name_rejected(self, name):
        with pytest.raises(PackageError) as err:
            Package(name=name, version="1.0")
        assert "unrepresentable" in str(err.value)

    @pytest.mark.parametrize("version", ["1.0|2", "1.0\n0:9", "1\r0"])
    def test_delimiter_in_version_rejected(self, version):
        with pytest.raises(PackageError):
            Package(name="ok", version=version)

    @pytest.mark.parametrize("field", [{"name": ""}, {"version": ""}])
    def test_empty_fields_rejected(self, field):
        kwargs = {"name": "ok", "version": "1.0", **field}
        with pytest.raises(PackageError) as err:
            Package(**kwargs)
        assert "must be non-empty" in str(err.value)

    def test_catalog_style_versions_accepted(self):
        # the weird-but-legal forms the catalogs actually mint
        for version in ("7.4p1", "1:7.9p1-10+deb10u2", "20161107~git"):
            assert Package(name="x", version=version).version == version

    def test_forged_entry_cannot_smuggle_a_second_package(self):
        """What the bug used to allow: one add() materializing two
        installed entries."""
        from repro.kernel import Kernel, make_ext4
        db = PackageDb(Syscalls(Kernel(make_ext4()).init_process),
                       "/var/lib/rpm/packages")
        with pytest.raises(PackageError):
            db.add(Package(name="good|innocent", version="1.0"))
        assert db.installed() == {}


class TestPackageDbRoundTrip:
    """Property: any safe (name, version) set round-trips through the
    line-oriented database byte-exactly."""

    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    _name = st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="|\n\r",
                               categories=("L", "N", "P")),
        min_size=1, max_size=24)
    _version = st.text(
        alphabet="0123456789.:-+~abcdefghijklmnopqrstuvwxyz",
        min_size=1, max_size=16)

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(entries=st.dictionaries(_name, _version, min_size=1,
                                   max_size=12))
    def test_store_then_read_is_identity(self, entries):
        from repro.kernel import Kernel, make_ext4
        db = PackageDb(Syscalls(Kernel(make_ext4()).init_process),
                       "/var/lib/rpm/packages")
        for name, version in entries.items():
            db.add(Package(name=name, version=version))
        assert db.installed() == entries
