"""INI parser unit tests (yum config files)."""

from repro.distro.ini import format_ini, parse_ini

SAMPLE = """\
# CentOS-Base.repo
[main]
cachedir=/var/cache/yum

[base]
name=CentOS-7 - Base
baseurl=repo://centos7/base-x86_64
enabled=1

[epel]
name = Extra Packages
enabled = 0
"""


class TestParseIni:
    def test_sections(self):
        sections = parse_ini(SAMPLE)
        assert set(sections) == {"main", "base", "epel"}

    def test_values(self):
        sections = parse_ini(SAMPLE)
        assert sections["base"]["enabled"] == "1"
        assert sections["base"]["baseurl"] == "repo://centos7/base-x86_64"

    def test_whitespace_around_equals(self):
        sections = parse_ini(SAMPLE)
        assert sections["epel"]["name"] == "Extra Packages"
        assert sections["epel"]["enabled"] == "0"

    def test_comments_ignored(self):
        assert "# CentOS-Base.repo" not in parse_ini(SAMPLE)

    def test_keys_outside_section_ignored(self):
        assert parse_ini("stray=1\n[a]\nk=v\n") == {"a": {"k": "v"}}

    def test_empty(self):
        assert parse_ini("") == {}

    def test_roundtrip(self):
        sections = parse_ini(SAMPLE)
        again = parse_ini(format_ini(sections))
        assert again == sections

    def test_value_with_equals(self):
        sections = parse_ini("[s]\nopt=a=b=c\n")
        assert sections["s"]["opt"] == "a=b=c"
