"""yum/rpm and apt/dpkg behaviour inside containers of each privilege type.

These are the §2.3 mechanics: "distribution package managers assume
privileged access, and key packages need multiple UIDs/GIDs and privileged
system calls like chown(2) to install."
"""

import pytest

from repro.containers import enter_container
from repro.core import ChImage
from repro.shell import OutputSink, execute


def run_in(ctx, cmd):
    sink = OutputSink()
    status = execute(ctx.child(stdout=sink, stderr=sink),
                     ["/bin/sh", "-c", cmd])
    return status, sink.text()


@pytest.fixture
def centos_tree(login, alice):
    ch = ChImage(login, alice)
    return ch.pull("centos:7")


@pytest.fixture
def debian_tree(login, alice):
    ch = ChImage(login, alice)
    return ch.pull("debian:buster")


def type3(login, alice, tree):
    return enter_container(alice, tree, "type3", dev_fs=login.dev_fs)


def type2(login, alice, tree):
    return enter_container(alice, tree, "type2", dev_fs=login.dev_fs,
                           shadow=login.shadow)


class TestYum:
    def test_install_all_root_package_works_type3(self, login, alice,
                                                  centos_tree):
        ctx = type3(login, alice, centos_tree)
        status, out = run_in(ctx, "yum install -y epel-release")
        assert status == 0, out
        assert "Complete!" in out

    def test_openssh_fails_type3_with_cpio_chown(self, login, alice,
                                                 centos_tree):
        ctx = type3(login, alice, centos_tree)
        status, out = run_in(ctx, "yum install -y openssh")
        assert status == 1
        assert "cpio: chown" in out
        assert "Error unpacking rpm package openssh-7.4p1-21.el7.x86_64" in out

    def test_openssh_succeeds_type2(self, login, alice, centos_tree):
        ctx = type2(login, alice, centos_tree)
        status, out = run_in(ctx, "yum install -y openssh")
        assert status == 0, out
        # the payload file really carries the packaged group (mapped)
        from repro.userdb import UserDb
        db = UserDb.load(ctx.sys)
        ssh_keys = db.group_by_name("ssh_keys")
        st = ctx.sys.stat("/usr/libexec/openssh/ssh-keysign")
        assert st.st_gid == ssh_keys.gid  # in-namespace view
        assert st.kgid != ssh_keys.gid  # on disk: a subordinate ID
        assert st.st_mode & 0o2000  # setgid preserved

    def test_already_installed(self, login, alice, centos_tree):
        ctx = type3(login, alice, centos_tree)
        run_in(ctx, "yum install -y epel-release")
        status, out = run_in(ctx, "yum install -y epel-release")
        assert status == 0
        assert "already installed" in out

    def test_dependencies_pulled(self, login, alice, centos_tree):
        ctx = type2(login, alice, centos_tree)
        status, out = run_in(ctx, "yum install -y atse")
        assert status == 0
        for dep in ("gcc", "openmpi", "hdf5", "atse"):
            assert f"Installing: {dep}" in out

    def test_unknown_package(self, login, alice, centos_tree):
        ctx = type3(login, alice, centos_tree)
        status, out = run_in(ctx, "yum install -y no-such-pkg")
        assert status == 1

    def test_requires_dash_y(self, login, alice, centos_tree):
        ctx = type3(login, alice, centos_tree)
        status, _ = run_in(ctx, "yum install epel-release")
        assert status == 1

    def test_enablerepo_flag(self, login, alice, centos_tree):
        """fakeroot only installs from EPEL via --enablerepo (§5.3.1)."""
        ctx = type3(login, alice, centos_tree)
        status, _ = run_in(ctx, "yum install -y fakeroot")
        assert status == 1  # not in base, EPEL not configured
        run_in(ctx, "yum install -y epel-release")
        run_in(ctx, "yum-config-manager --disable epel")
        status, _ = run_in(ctx, "yum install -y fakeroot")
        assert status == 1  # EPEL installed but disabled
        status, out = run_in(ctx,
                             "yum --enablerepo=epel install -y fakeroot")
        assert status == 0, out

    def test_config_manager_edits_repo_file(self, login, alice, centos_tree):
        ctx = type3(login, alice, centos_tree)
        run_in(ctx, "yum install -y epel-release")
        raw = ctx.sys.read_file("/etc/yum.repos.d/epel.repo").decode()
        assert "enabled=1" in raw
        run_in(ctx, "yum-config-manager --disable epel")
        raw = ctx.sys.read_file("/etc/yum.repos.d/epel.repo").decode()
        assert "enabled=0" in raw

    def test_repolist(self, login, alice, centos_tree):
        ctx = type3(login, alice, centos_tree)
        status, out = run_in(ctx, "yum repolist")
        assert status == 0 and "base" in out


class TestApt:
    def test_update_fails_type3_with_sandbox_errors(self, login, alice,
                                                    debian_tree):
        """Figure 3's exact error lines."""
        ctx = type3(login, alice, debian_tree)
        status, out = run_in(ctx, "apt-get update")
        assert status == 100
        assert ("E: setgroups 65534 failed - setgroups "
                "(1: Operation not permitted)") in out
        assert ("E: seteuid 100 failed - seteuid "
                "(22: Invalid argument)") in out

    def test_update_succeeds_type2(self, login, alice, debian_tree):
        """§4.1: with mapped IDs the sandbox drop works."""
        ctx = type2(login, alice, debian_tree)
        status, out = run_in(ctx, "apt-get update")
        assert status == 0, out
        assert "Reading package lists..." in out

    def test_no_sandbox_config_lets_type3_update(self, login, alice,
                                                 debian_tree):
        ctx = type3(login, alice, debian_tree)
        run_in(ctx, "echo 'APT::Sandbox::User \"root\";' > "
                    "/etc/apt/apt.conf.d/no-sandbox")
        status, out = run_in(ctx, "apt-get update")
        assert status == 0, out

    def test_install_without_indexes_fails(self, login, alice, debian_tree):
        """'The base image contains none, so no packages can be installed
        without this update' (§5.2)."""
        ctx = type2(login, alice, debian_tree)
        status, out = run_in(ctx, "apt-get install -y pseudo")
        assert status == 100
        assert "Unable to locate package pseudo" in out

    def test_pseudo_installs_unprivileged_with_term_log_warning(
            self, login, alice, debian_tree):
        """Figure 9 line 21: pseudo (all root:root) installs fine in
        Type III once sandboxing is off, but the root:adm chown of
        term.log warns."""
        ctx = type3(login, alice, debian_tree)
        run_in(ctx, "echo 'APT::Sandbox::User \"root\";' > "
                    "/etc/apt/apt.conf.d/no-sandbox")
        run_in(ctx, "apt-get update")
        status, out = run_in(ctx, "apt-get install -y pseudo")
        assert status == 0, out
        assert "W: chown to root:adm of file /var/log/apt/term.log failed" \
            in out

    def test_openssh_client_fails_type3_even_without_sandbox(
            self, login, alice, debian_tree):
        ctx = type3(login, alice, debian_tree)
        run_in(ctx, "echo 'APT::Sandbox::User \"root\";' > "
                    "/etc/apt/apt.conf.d/no-sandbox")
        run_in(ctx, "apt-get update")
        status, out = run_in(ctx, "apt-get install -y openssh-client")
        assert status == 100
        assert "dpkg: error processing" in out

    def test_openssh_client_on_plain_ext4_fails_at_setcap(
            self, login, alice, debian_tree):
        """Subtlety: even in Type II, *file capabilities* need a superblock
        the namespace owns.  On a plain ext4 directory the setcap postinst
        step fails; it works under Podman because fuse-overlayfs provides
        such a superblock (see containers tests)."""
        ctx = type2(login, alice, debian_tree)
        run_in(ctx, "apt-get update")
        status, out = run_in(ctx, "apt-get install -y openssh-client")
        assert status == 100
        assert "Failed to set capabilities" in out
        # ...but the chown root:_ssh part DID work before the caps step
        st = ctx.sys.stat("/usr/bin/ssh-agent")
        assert st.st_mode & 0o2000

    def test_apt_config_dump(self, login, alice, debian_tree):
        ctx = type3(login, alice, debian_tree)
        status, out = run_in(ctx, "apt-config dump")
        assert status == 0 and "APT::Sandbox" not in out
        run_in(ctx, "echo 'APT::Sandbox::User \"root\";' > "
                    "/etc/apt/apt.conf.d/no-sandbox")
        status, out = run_in(ctx, "apt-config dump")
        assert 'APT::Sandbox::User "root";' in out

    def test_dpkg_l(self, login, alice, debian_tree):
        ctx = type3(login, alice, debian_tree)
        status, out = run_in(ctx, "dpkg -l")
        assert status == 0
        assert "libc-bin" in out
