"""Structural privilege audit: measure the paper's §2.2 terminology over
every process each builder actually spawns (via the kernel's spawn log,
which survives short-lived helpers being reaped).

* *fully unprivileged* (Charliecloud): no process at any point holds any
  capability with respect to the initial user namespace, and every process
  keeps the invoking user's host UID.
* *mostly unprivileged* (rootless Podman): same, EXCEPT the setcap helper
  processes (newuidmap/newgidmap) — and only those.
* Type I (Docker): the build itself runs with host root.
"""

import pytest

from repro.containers import DockerDaemon, Podman
from repro.core import ChImage
from repro.kernel import Cap
from tests.conftest import FIG2_DOCKERFILE

HELPER_COMMS = {"newuidmap", "newgidmap"}


def _audit(kernel, first_pid, *, invoking_uid):
    """Classify every process spawned after *first_pid* from the spawn log.

    Returns (privileged, helpers): entries whose spawn-time credentials held
    init-namespace capabilities or a foreign UID, and the shadow-utils
    helper entries, respectively.
    """
    privileged = []
    helpers = []
    for pid, comm, euid, caps, userns in kernel.spawn_log:
        if pid <= first_pid:
            continue
        if comm in HELPER_COMMS:
            helpers.append((pid, comm, euid, caps))
            continue
        # caps held wrt the INITIAL namespace only count when the process
        # lives in it; container-root caps in child namespaces are fine.
        has_init_caps = bool(caps) and userns is kernel.init_userns
        if has_init_caps or euid != invoking_uid:
            privileged.append((pid, comm, euid, caps))
    return privileged, helpers


class TestFullyUnprivileged:
    def test_chimage_force_build_spawns_no_privileged_process(self, login,
                                                              alice):
        first = max(login.kernel.processes)
        ch = ChImage(login, alice)
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        privileged, helpers = _audit(login.kernel, first, invoking_uid=1000)
        assert privileged == []
        assert helpers == []  # not even setcap helpers

    def test_chimage_seccomp_build_also_clean(self, login, alice):
        first = max(login.kernel.processes)
        ch = ChImage(login, alice, force_mode="seccomp")
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert r.success
        privileged, helpers = _audit(login.kernel, first, invoking_uid=1000)
        assert privileged == [] and helpers == []


class TestMostlyUnprivileged:
    def test_podman_build_privilege_confined_to_helpers(self, login, alice):
        first = max(login.kernel.processes)
        podman = Podman(login, alice)
        r = podman.build(FIG2_DOCKERFILE, "foo")
        assert r.success
        privileged, helpers = _audit(login.kernel, first, invoking_uid=1000)
        # "Podman itself remains completely unprivileged; instead a set of
        # carefully managed tools ... are executed by Podman" (§4.1)
        assert privileged == []
        assert helpers  # the setcap helpers did run

    def test_helper_capabilities_are_minimal(self, login, alice):
        """§4.1: 'installed using CAP_SETUID, which helps minimize risk ...
        compared to using a SETUID bit' — the helper holds exactly the two
        set-ID capabilities, not full root."""
        first = max(login.kernel.processes)
        Podman(login, alice)
        helper_caps = [caps for pid, comm, _, caps, _
                       in login.kernel.spawn_log
                       if pid > first and comm in HELPER_COMMS]
        assert helper_caps
        for caps in helper_caps:
            assert caps == frozenset({Cap.SETUID, Cap.SETGID})


class TestTypeOnePrivileged:
    def test_docker_build_runs_as_host_root(self, login, alice):
        first = max(login.kernel.processes)
        docker = DockerDaemon(login, docker_group={1000})
        r = docker.build(alice, FIG2_DOCKERFILE, "foo")
        assert r.success
        privileged, _ = _audit(login.kernel, first, invoking_uid=1000)
        # the daemon and its container children are host root
        assert any(euid == 0 for _, _, euid, _ in privileged)
