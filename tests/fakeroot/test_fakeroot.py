"""Tests for the fakeroot engines: the Figure 7 behaviours, consistency of
lies, engine quirks, and persistence."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import Errno, KernelError
from repro.fakeroot import (
    ENGINES,
    FAKEROOT_CLASSIC,
    FAKEROOT_NG,
    PSEUDO,
    FakerootError,
    FakerootSyscalls,
    Lie,
    LieDatabase,
    LieFormatError,
    engine_by_name,
)
from repro.kernel import FileType, Kernel, Syscalls, make_ext4


@pytest.fixture
def kernel():
    k = Kernel(make_ext4(), hostname="ws")
    sys0 = Syscalls(k.init_process)
    sys0.mkdir_p("/home/alice")
    sys0.chown("/home/alice", 1000, 1000)
    return k


@pytest.fixture
def alice_sys(kernel):
    return Syscalls(kernel.login(1000, 1000, user="alice", home="/home/alice"))


@pytest.fixture
def fr(alice_sys):
    return FakerootSyscalls(alice_sys, FAKEROOT_CLASSIC)


class TestFigure7:
    """The paper's fakeroot demo: touch, chown nobody, mknod, ls."""

    def test_chown_fakes_success(self, fr, alice_sys):
        fr.write_file("/home/alice/test.file", b"")
        fr.chown("/home/alice/test.file", 65534, -1)  # nobody
        st = fr.stat("/home/alice/test.file")
        assert st.st_uid == 65534
        assert st.st_gid == 0  # own gid displays as root

    def test_mknod_fakes_device(self, fr):
        fr.mknod("/home/alice/test.dev", FileType.CHR, 0o644, rdev=(1, 1))
        st = fr.stat("/home/alice/test.dev")
        assert st.ftype is FileType.CHR
        assert st.st_rdev == (1, 1)
        assert st.st_uid == 0 and st.st_gid == 0

    def test_unwrapped_ls_exposes_the_lies(self, fr, alice_sys):
        """Figure 7's second ls: outside fakeroot, the files are plain and
        owned by the real user."""
        fr.write_file("/home/alice/test.file", b"")
        fr.chown("/home/alice/test.file", 65534, -1)
        fr.mknod("/home/alice/test.dev", FileType.CHR, rdev=(1, 1))
        st_file = alice_sys.stat("/home/alice/test.file")
        st_dev = alice_sys.stat("/home/alice/test.dev")
        assert st_file.st_uid == 1000
        assert st_dev.ftype is FileType.REG  # really a plain file
        assert st_dev.st_rdev == (0, 0)

    def test_identity_is_root(self, fr):
        assert fr.geteuid() == 0
        assert fr.getuid() == 0
        assert fr.getegid() == 0


class TestLieConsistency:
    def test_later_stat_sees_earlier_chown(self, fr):
        fr.write_file("/home/alice/f", b"")
        fr.chown("/home/alice/f", 25, 31)
        assert (fr.stat("/home/alice/f").st_uid,
                fr.stat("/home/alice/f").st_gid) == (25, 31)

    def test_partial_chown_merges(self, fr):
        fr.write_file("/home/alice/f", b"")
        fr.chown("/home/alice/f", 25, -1)
        fr.chown("/home/alice/f", -1, 31)
        st = fr.stat("/home/alice/f")
        assert (st.st_uid, st.st_gid) == (25, 31)

    def test_rename_preserves_lie(self, fr):
        fr.write_file("/home/alice/f", b"")
        fr.chown("/home/alice/f", 25, 25)
        fr.rename("/home/alice/f", "/home/alice/g")
        assert fr.stat("/home/alice/g").st_uid == 25

    def test_unlink_forgets_lie(self, fr):
        fr.write_file("/home/alice/f", b"")
        fr.chown("/home/alice/f", 25, 25)
        dev_ino = (fr.inner.stat("/home/alice/f").st_dev,
                   fr.inner.stat("/home/alice/f").st_ino)
        fr.unlink("/home/alice/f")
        assert fr.db.get(*dev_ino) is None

    def test_hard_links_share_lies(self, fr):
        fr.write_file("/home/alice/a", b"")
        fr.link("/home/alice/a", "/home/alice/b")
        fr.chown("/home/alice/a", 7, 7)
        assert fr.stat("/home/alice/b").st_uid == 7

    def test_chmod_real_when_possible(self, fr, alice_sys):
        fr.write_file("/home/alice/f", b"")
        fr.chmod("/home/alice/f", 0o4755)
        # Owner chmod works for real: visible outside the wrapper too.
        assert alice_sys.stat("/home/alice/f").st_mode & 0o7777 == 0o4755

    def test_chmod_eperm_becomes_lie(self, fr, kernel):
        root = Syscalls(kernel.init_process)
        root.write_file("/home/alice/rootfile", b"")
        root.chmod("/home/alice/rootfile", 0o644)
        fr.chmod("/home/alice/rootfile", 0o600)  # EPERM for alice -> lie
        assert fr.stat("/home/alice/rootfile").st_mode & 0o777 == 0o600
        assert fr.inner.stat("/home/alice/rootfile").st_mode & 0o777 == 0o644


class TestEngineQuirks:
    def test_ptrace_engine_rejects_unsupported_arch(self, kernel):
        kernel.arch = "aarch64"
        alice = kernel.login(1000, 1000, user="alice")
        with pytest.raises(FakerootError):
            FakerootSyscalls(Syscalls(alice), FAKEROOT_NG)

    def test_ptrace_engine_runs_on_x86_64(self, alice_sys):
        FakerootSyscalls(alice_sys, FAKEROOT_NG)

    def test_classic_does_not_fake_xattrs(self, fr):
        fr.write_file("/home/alice/f", b"")
        with pytest.raises(KernelError) as exc:
            fr.setxattr("/home/alice/f", "security.capability", b"caps")
        assert exc.value.errno == Errno.EPERM

    def test_pseudo_fakes_xattrs(self, alice_sys):
        ps = FakerootSyscalls(alice_sys, PSEUDO)
        ps.write_file("/home/alice/f", b"")
        ps.setxattr("/home/alice/f", "security.capability", b"caps")
        assert ps.getxattr("/home/alice/f", "security.capability") == b"caps"
        # ...but the real file has no such xattr
        with pytest.raises(KernelError):
            alice_sys.getxattr("/home/alice/f", "security.capability")

    def test_static_binary_wrapping_flag(self):
        assert not FAKEROOT_CLASSIC.wraps_static_binaries
        assert not PSEUDO.wraps_static_binaries
        assert FAKEROOT_NG.wraps_static_binaries

    def test_table1_rows(self):
        rows = [e.table_row() for e in ENGINES.values()]
        by_name = {r["implementation"]: r for r in rows}
        assert by_name["fakeroot"]["approach"] == "LD_PRELOAD"
        assert by_name["fakeroot-ng"]["architectures"] == "ppc, x86, x86_64"
        assert by_name["pseudo"]["persistency"] == "database"
        assert all(r["daemon?"] == "yes" for r in rows)

    def test_engine_by_name(self):
        assert engine_by_name("pseudo") is PSEUDO
        with pytest.raises(KeyError):
            engine_by_name("nope")

    def test_setuid_not_intercepted(self, fr):
        """fakeroot does not fake set*id — apt's sandbox drop still fails
        under it (why Figure 9 also needs the apt.conf change)."""
        with pytest.raises(KernelError):
            fr.seteuid(100)


class TestPersistence:
    def test_save_and_restore(self, fr, alice_sys):
        fr.write_file("/home/alice/f", b"")
        fr.chown("/home/alice/f", 25, 31)
        fr.mknod("/home/alice/dev", FileType.BLK, rdev=(8, 1))
        fr.save_state("/home/alice/.fakeroot.state")
        fresh = FakerootSyscalls(alice_sys, FAKEROOT_CLASSIC)
        assert fresh.stat("/home/alice/f").st_uid == 0  # no lie yet
        fresh.load_state("/home/alice/.fakeroot.state")
        assert fresh.stat("/home/alice/f").st_uid == 25
        assert fresh.stat("/home/alice/dev").ftype is FileType.BLK

    def test_dump_load_roundtrip_empty(self):
        db = LieDatabase()
        assert len(LieDatabase.load(db.dump())) == 0

    def test_load_rejects_garbage(self):
        with pytest.raises(LieFormatError):
            LieDatabase.load(b"1 2 3\n")
        with pytest.raises(LieFormatError):
            LieDatabase.load(b"a b c d e f g\n")


class TestLieDatabase:
    def test_merge_semantics(self):
        a = Lie(uid=1, xattrs=(("security.x", b"1"),))
        b = Lie(gid=2, xattrs=(("security.y", b"2"),))
        m = a.merged_with(b)
        assert m.uid == 1 and m.gid == 2
        assert dict(m.xattrs) == {"security.x": b"1", "security.y": b"2"}

    def test_record_and_forget(self):
        db = LieDatabase()
        db.record(1, 2, Lie(uid=5))
        db.record(1, 2, Lie(gid=6))
        lie = db.get(1, 2)
        assert lie.uid == 5 and lie.gid == 6
        db.forget(1, 2)
        assert db.get(1, 2) is None


# -- property tests: dump/load roundtrip and invisibility invariant --------------

_lie = st.builds(
    Lie,
    uid=st.one_of(st.none(), st.integers(0, 70000)),
    gid=st.one_of(st.none(), st.integers(0, 70000)),
    mode=st.one_of(st.none(), st.integers(0, 0o7777)),
    ftype=st.one_of(st.none(), st.sampled_from([FileType.CHR, FileType.BLK])),
    rdev=st.one_of(st.none(), st.tuples(st.integers(0, 255),
                                        st.integers(0, 255))),
)


@given(st.dictionaries(st.tuples(st.integers(1, 9), st.integers(1, 999)),
                       _lie, max_size=10))
def test_dump_load_roundtrip(entries):
    db = LieDatabase()
    for (dev, ino), lie in entries.items():
        db.record(dev, ino, lie)
    again = LieDatabase.load(db.dump())
    assert list(again) == list(db)


@given(st.integers(0, 70000), st.integers(0, 70000))
def test_lies_never_leak_to_raw_syscalls(uid, gid):
    """Invariant: intercepted metadata writes are never visible to raw reads."""
    k = Kernel(make_ext4())
    sys0 = Syscalls(k.init_process)
    sys0.mkdir_p("/home/alice")
    sys0.chown("/home/alice", 1000, 1000)
    raw = Syscalls(k.login(1000, 1000))
    fr = FakerootSyscalls(raw, FAKEROOT_CLASSIC)
    fr.write_file("/home/alice/f", b"")
    fr.chown("/home/alice/f", uid, gid)
    st = raw.stat("/home/alice/f")
    assert (st.kuid, st.kgid) == (1000, 1000)
    assert fr.stat("/home/alice/f").st_uid == uid
    assert fr.stat("/home/alice/f").st_gid == gid
