"""Daemonless blob distribution (§4.2/§6.3): binomial-tree broadcast vs
registry fan-out, plus the astra-deploy CLI that fronts it."""

import pytest

from repro.archive import TarArchive, TarMember
from repro.cluster import (
    BroadcastError,
    astra_deploy_cli,
    binomial_children,
    distribute_blobs,
    distribute_image,
    make_astra,
    make_deploy_topology,
    make_machine,
    make_world,
)
from repro.containers import ImageConfig, Registry
from repro.kernel import FileType, Syscalls
from repro.obs import attach_tracer
from repro.sim import (FaultPlan, SimEngine, optimizations_enabled,
                       reference_engine, set_optimizations)


def layer(name, data=b"payload"):
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0,
                                 data=data)])


@pytest.fixture
def registry():
    r = Registry("site")
    r.push("app:v1", ImageConfig(),
           [layer("bin", b"b" * 4000), layer("lib", b"l" * 2000)])
    return r


@pytest.fixture
def digests(registry):
    return registry.image_blob_digests("app:v1")


def nodes_named(n):
    return [make_machine(f"cn{i}") for i in range(n)]


class TestBinomialChildren:
    def test_single_position(self):
        assert binomial_children(1) == {0: []}

    def test_five_positions(self):
        assert binomial_children(5) == {
            0: [1, 2, 4], 1: [3], 2: [], 3: [], 4: []}

    def test_every_position_has_one_parent(self):
        children = binomial_children(8)
        served = [c for kids in children.values() for c in kids]
        assert sorted(served) == list(range(1, 8))

    def test_rounds_double_the_holders(self):
        # the root serves one child per round: log2(N) sends for the root
        assert len(binomial_children(8)[0]) == 3


class TestDistributeBlobs:
    def test_registry_direct_egress_is_o_n(self, registry, digests):
        nodes = nodes_named(8)
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="registry")
        assert rep.registry_blobs_pulled == 8 * len(digests)
        assert rep.registry_egress_bytes == 8 * rep.image_bytes
        assert rep.peer_sends == 0
        for node in nodes:
            assert all(node.content_store.has(d) for d in digests)

    def test_tree_egress_is_o_image(self, registry, digests):
        nodes = nodes_named(8)
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree")
        assert rep.registry_blobs_pulled == len(digests)
        assert rep.registry_egress_bytes == rep.image_bytes
        assert rep.peer_sends == 7 * len(digests)
        assert rep.peer_bytes == 7 * rep.image_bytes
        for node in nodes:
            assert all(node.content_store.has(d) for d in digests)

    def test_tree_makespan_beats_registry_direct(self):
        results = {}
        for strategy in ("registry", "tree"):
            r = Registry("site")
            r.push("app:v1", ImageConfig(),
                   [layer("bin", b"b" * 4000), layer("lib", b"l" * 2000)])
            nodes = nodes_named(8)
            topo = make_deploy_topology(r, nodes)
            results[strategy] = distribute_blobs(
                r, r.image_blob_digests("app:v1"), nodes, topo,
                strategy=strategy)
        assert results["tree"].makespan < results["registry"].makespan
        assert results["registry"].makespan >= 2 * results["tree"].makespan

    def test_holder_roots_the_tree(self, registry, digests):
        """A node that already has a blob serves it — the registry is
        never touched for that blob (per-blob dedup)."""
        nodes = nodes_named(4)
        blob = registry.fetch_blob(digests[0])
        nodes[2].content_store.put(blob)
        pulled_before = registry.stats.blobs_pulled
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_blobs(registry, [digests[0]], nodes, topo,
                               strategy="tree")
        assert rep.blobs_skipped == 1
        assert rep.registry_blobs_pulled == 0
        assert rep.registry_egress_bytes == 0
        assert registry.stats.blobs_pulled == pulled_before
        assert rep.peer_sends == 3  # the three needy nodes
        assert all(n.content_store.has(digests[0]) for n in nodes)

    def test_multiple_holders_root_a_forest(self):
        """Regression: with several pre-seeded holders only holders[0]
        used to serve — the rest sat idle.  Every holder now roots its
        own subtree, so more holders means a shorter makespan."""
        def run(n_holders):
            r = Registry("site")
            r.push("app:v1", ImageConfig(), [layer("bin", b"b" * 8000)])
            digest = r.image_blob_digests("app:v1")[0]
            blob = r.fetch_blob(digest)
            nodes = nodes_named(9)
            for k in range(n_holders):
                nodes[k].content_store.put(blob)
            topo = make_deploy_topology(r, nodes)
            rep = distribute_blobs(r, [digest], nodes, topo,
                                   strategy="tree")
            for n in nodes:
                assert n.content_store.has(digest)
            return rep

        one, three = run(1), run(3)
        assert three.registry_blobs_pulled == 0
        # all three holders actually served somebody
        assert {"cn0", "cn1", "cn2"} <= {t.src for t in three.transfers}
        assert three.makespan < one.makespan

    def test_all_holders_means_no_transfers(self, registry, digests):
        nodes = nodes_named(2)
        for d in digests:
            blob = registry.fetch_blob(d)
            for n in nodes:
                n.content_store.put(blob)
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree")
        assert rep.blobs_skipped == 2 * len(digests)
        assert rep.peer_sends == 0 and rep.registry_blobs_pulled == 0
        assert rep.makespan == 0.0

    def test_node_ready_covers_every_node(self, registry, digests):
        nodes = nodes_named(5)
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree")
        assert set(rep.node_ready) == {n.hostname for n in nodes}
        assert rep.makespan == max(rep.node_ready.values())
        d = rep.as_dict()
        assert d["strategy"] == "tree" and d["blobs"] == len(digests)
        assert d["transfers"] == len(rep.transfers)

    def test_unknown_strategy_rejected(self, registry, digests):
        nodes = nodes_named(2)
        topo = make_deploy_topology(registry, nodes)
        with pytest.raises(BroadcastError):
            distribute_blobs(registry, digests, nodes, topo,
                             strategy="bittorrent")

    def test_span_and_metrics_emitted(self, registry, digests):
        nodes = nodes_named(4)
        tracer = attach_tracer(nodes[0].kernel)
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree", tracer=tracer)
        spans = [s for root in tracer.roots for s in root.walk()
                 if s.kind == "broadcast"]
        assert len(spans) == 1
        assert spans[0].meta["strategy"] == "tree"
        assert spans[0].meta["makespan"] == pytest.approx(rep.makespan,
                                                          abs=1e-9)
        net = tracer.metrics.net
        assert net["deploy_distributions"] == 1
        assert net["deploy_registry_egress_bytes"] == rep.image_bytes
        assert net["deploy_peer_sends"] == 3 * len(digests)
        assert "net" in tracer.metrics.snapshot()

    def test_shared_engine_starts_from_its_clock(self, registry, digests):
        nodes = nodes_named(2)
        topo = make_deploy_topology(registry, nodes)
        engine = SimEngine()
        engine.clock.advance_to(10.0)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree", engine=engine)
        assert rep.started_at == 10.0
        assert all(t >= 10.0 for t in rep.node_ready.values())


class TestOptimizationParity:
    """The engine fast paths (bulk transmit, bucket queue, leaf-event
    coalescing) must be invisible: identical reports — every float —
    and digest-identical node stores with optimizations on vs off."""

    def _run(self, strategy, *, holders=0, plan=None):
        r = Registry("site")
        r.push("app:v1", ImageConfig(),
               [layer("bin", b"b" * 4000), layer("lib", b"l" * 2000)])
        ds = r.image_blob_digests("app:v1")
        nodes = nodes_named(9)
        for k in range(holders):
            nodes[k].content_store.put(r.fetch_blob(ds[0]))
        topo = make_deploy_topology(r, nodes)
        rep = distribute_blobs(r, ds, nodes, topo, strategy=strategy,
                               fault_plan=plan)
        stores = {n.hostname: sorted(n.content_store.digests())
                  for n in nodes}
        return rep.as_dict(), rep.node_ready, stores

    @pytest.fixture(autouse=True)
    def _force_optimizations(self):
        """Run the 'opt' side with the fast paths on even under
        REPRO_SIM_REFERENCE=1, so parity is always opt-vs-reference."""
        prev = set_optimizations(True)
        yield
        set_optimizations(prev)

    @pytest.mark.parametrize("strategy", ["tree", "registry"])
    def test_clean_run_parity(self, strategy):
        assert optimizations_enabled()
        opt = self._run(strategy)
        with reference_engine():
            ref = self._run(strategy)
        assert opt == ref     # dict equality: exact floats, not approx

    def test_holder_forest_parity(self):
        opt = self._run("tree", holders=3)
        with reference_engine():
            ref = self._run("tree", holders=3)
        assert opt == ref

    def test_fault_plan_disables_coalescing_but_stays_identical(self):
        """Under a live fault plan every transfer keeps its chunk
        schedule (repair may promote leaves to relays), yet the bulk
        transmit and bucket queue still apply — results must match the
        reference engine exactly, including the repaired tree."""
        def plan():
            return FaultPlan(seed=7).add_node_crash("cn1", 1e-6)

        opt = self._run("tree", plan=plan())
        with reference_engine():
            ref = self._run("tree", plan=plan())
        assert opt == ref


class TestDistributeImage:
    def test_layers_land_on_every_node(self, registry):
        nodes = nodes_named(3)
        topo = make_deploy_topology(registry, nodes)
        rep = distribute_image(registry, "app:v1", nodes, topo)
        assert rep.blobs == 2
        for d in registry.image_blob_digests("app:v1"):
            assert all(n.content_store.has(d) for n in nodes)


class TestMakeDeployTopology:
    def test_attaches_registry_and_nodes(self, registry):
        nodes = nodes_named(2)
        topo = make_deploy_topology(registry, nodes, bandwidth=10.0)
        assert registry.netlink is topo.link("site")
        for n in nodes:
            assert n.netlink is topo.link(n.hostname)
            assert n.netlink.bandwidth == 10.0


class TestDeployCli:
    @pytest.fixture
    def astra(self):
        return make_astra(make_world(), n_compute=4)

    def write_dockerfile(self, astra):
        proc = astra.login.login("alice")
        Syscalls(proc).write_file(
            "/home/alice/Dockerfile",
            b"FROM centos:7\nRUN yum install -y atse\n")
        return "/home/alice/Dockerfile"

    def test_tree_deploy(self, astra):
        path = self.write_dockerfile(astra)
        status, out = astra_deploy_cli(
            astra, ["--deploy-strategy", "tree", "--nodes", "4",
                    "-t", "app", "-f", path, "alice"])
        assert status == 0, out
        assert "distribution [tree]" in out
        assert "makespan:" in out
        assert "busiest link:" in out

    def test_strategy_off_is_the_legacy_path(self, astra):
        path = self.write_dockerfile(astra)
        status, out = astra_deploy_cli(
            astra, ["--deploy-strategy=off", "--nodes", "2",
                    "-t", "app", "-f", path, "alice"])
        assert status == 0, out
        assert "distribution" not in out and "makespan" not in out

    def test_missing_required_args_prints_usage(self, astra):
        status, out = astra_deploy_cli(astra, ["alice"])
        assert status == 1 and out.startswith("usage:")

    def test_unknown_strategy(self, astra):
        path = self.write_dockerfile(astra)
        status, out = astra_deploy_cli(
            astra, ["--deploy-strategy", "carrier-pigeon",
                    "-t", "app", "-f", path, "alice"])
        assert status == 1 and "unknown strategy" in out

    def test_unknown_option(self, astra):
        status, out = astra_deploy_cli(
            astra, ["--frobnicate", "-t", "a", "-f", "/x", "alice"])
        assert status == 1 and "unknown option" in out

    def test_bad_node_count(self, astra):
        status, out = astra_deploy_cli(
            astra, ["--nodes", "lots", "-t", "a", "-f", "/x", "alice"])
        assert status == 1 and "bad node count" in out

    def test_unknown_user(self, astra):
        path = self.write_dockerfile(astra)
        status, out = astra_deploy_cli(
            astra, ["-t", "app", "-f", path, "mallory"])
        assert status == 1 and "no account" in out

    def test_unreadable_dockerfile(self, astra):
        status, out = astra_deploy_cli(
            astra, ["-t", "app", "-f", "/no/such/file", "alice"])
        assert status == 1 and "can't read" in out
