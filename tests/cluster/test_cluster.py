"""Cluster substrate tests: machines, scheduler, CI, Astra workflow."""

import pytest

from repro.cluster import (
    CiError,
    CiJob,
    CiServer,
    Scheduler,
    SchedulerError,
    astra_build_workflow,
    laptop_build_workflow,
    make_astra,
    make_machine,
    make_world,
)
from repro.core import ChImage
from repro.kernel import Syscalls

ATSE_DOCKERFILE = """\
FROM centos:7
RUN yum install -y gcc
RUN yum install -y openmpi hdf5
RUN yum install -y atse
"""


class TestMachine:
    def test_users_and_homes(self, login):
        alice = login.login("alice")
        sys = Syscalls(alice)
        assert sys.geteuid() == 1000
        assert sys.exists("/home/alice")

    def test_dev_nodes_exist(self, login):
        sys0 = login.root_sys()
        st = sys0.stat("/dev/null")
        assert st.st_rdev == (1, 3)

    def test_subids_allocated(self, login):
        assert login.shadow.subuid().entries_for("alice", 1000)

    def test_no_subids_option(self, world):
        m = make_machine("m", network=world.network, subids=False)
        assert not m.shadow.subuid().entries_for("alice", 1000)

    def test_mount_shared(self, world):
        from repro.kernel import make_nfs
        m = make_machine("m", network=world.network)
        m.mount_shared("/users", make_nfs("nfs-home"))
        res = m.kernel.init_process.mnt_ns.resolve(
            "/users", m.kernel.init_process.cred)
        assert res.fs.fstype == "nfs"


class TestScheduler:
    def test_parallel_ranks(self, world):
        nodes = [make_machine(f"cn{i}", network=world.network)
                 for i in range(4)]
        sched = Scheduler(nodes)
        result = sched.srun(
            "alice", 4,
            lambda node, rank, login: (0, f"rank {rank} on {node.hostname}\n"))
        assert result.success
        assert len(result.rank_outputs) == 4
        assert "rank 3 on cn3" in result.output

    def test_over_allocation(self, world):
        sched = Scheduler([make_machine("cn0", network=world.network)])
        with pytest.raises(SchedulerError):
            sched.srun("alice", 2, lambda n, r, l: (0, ""))

    def test_failed_rank_marks_job(self, world):
        sched = Scheduler([make_machine(f"cn{i}", network=world.network)
                           for i in range(2)])
        result = sched.srun(
            "alice", 2, lambda n, r, l: (1 if r == 1 else 0, ""))
        assert not result.success

    def test_unknown_user(self, world):
        sched = Scheduler([make_machine("cn0", network=world.network,
                                        users={"bob": 1001})])
        with pytest.raises(SchedulerError):
            sched.srun("alice", 1, lambda n, r, l: (0, ""))

    def test_no_nodes(self):
        with pytest.raises(SchedulerError):
            Scheduler([])


class TestCi:
    def test_pipeline_pass(self):
        server = CiServer()
        pipe = server.new_pipeline("app")
        pipe.stage("build").jobs.append(CiJob("compile", lambda: (0, "ok")))
        pipe.stage("test").jobs.append(CiJob("smoke", lambda: (0, "ok")))
        result = server.trigger(pipe)
        assert result.passed
        assert "passed" in result.report()

    def test_stage_gating(self):
        ran = []
        server = CiServer()
        pipe = server.new_pipeline("app")
        pipe.stage("build").jobs.append(
            CiJob("compile", lambda: (ran.append("b"), (1, "boom"))[1]))
        pipe.stage("test").jobs.append(
            CiJob("smoke", lambda: (ran.append("t"), (0, "ok"))[1]))
        result = server.trigger(pipe)
        assert not result.passed
        assert result.failed_stage == "build"
        assert ran == ["b"]  # test stage never ran

    def test_empty_stage_rejected(self):
        server = CiServer()
        pipe = server.new_pipeline("app")
        pipe.stage("build")
        with pytest.raises(CiError):
            server.trigger(pipe)

    def test_history(self):
        server = CiServer()
        for _ in range(2):
            pipe = server.new_pipeline("x")
            pipe.stage("s").jobs.append(CiJob("j", lambda: (0, "")))
            server.trigger(pipe)
        assert len(server.history) == 2


class TestAstraWorkflow:
    @pytest.fixture
    def astra(self, world_multiarch):
        return make_astra(world_multiarch, n_compute=3)

    def test_full_figure6_workflow(self, astra, world_multiarch):
        report = astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                                      "atse", n_nodes=3)
        assert report.success, report.phases
        assert report.layer_count == 4  # base + 3 RUN layers
        assert world_multiarch.site_registry.has("alice/atse:latest")
        for rank in range(3):
            assert f"[rank {rank}] ATSE on astra-cn{rank + 1:03d} (aarch64)" \
                in report.deploy.output

    def test_aarch64_image_produced(self, astra, world_multiarch):
        astra_build_workflow(astra, "alice", ATSE_DOCKERFILE, "atse")
        config, _ = world_multiarch.site_registry.pull("alice/atse:latest")
        assert config.arch == "aarch64"

    def test_laptop_antipattern_fails_at_deploy(self, astra,
                                                world_multiarch):
        """§4.2: x86-64 images 'would not execute on Astra'."""
        report = laptop_build_workflow(astra, world_multiarch, "alice",
                                       ATSE_DOCKERFILE, "atse-x86")
        assert report.build_ok  # builds fine on the laptop...
        assert report.push_ok
        assert not report.deploy.success  # ...but cannot run on Astra
        assert "Exec format error" in report.deploy.output

    def test_build_failure_stops_workflow(self, astra):
        report = astra_build_workflow(astra, "alice",
                                      "FROM centos:7\nRUN false\n", "broken")
        assert not report.build_ok
        assert report.deploy is None

    def test_ci_pipeline_on_compute_nodes(self, astra, world_multiarch):
        """The §5.3.3 production pattern: build + validate as CI jobs using
        normal cluster jobs."""
        server = CiServer("gitlab")
        pipe = server.new_pipeline("atse-app")

        def build_job():
            rep = astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                                       "ci-atse", n_nodes=1)
            return (0 if rep.build_ok and rep.push_ok else 1,
                    "\n".join(rep.phases))

        def validate_job():
            def smoke(node, rank, login):
                ch = ChImage(node, login)
                path = ch.pull("gitlab.example.gov/alice/ci-atse:latest")
                from repro.core import ChRun
                res = ChRun(node, login).run(
                    path, ["/opt/atse/bin/atse-info"])
                return res.status, res.output
            result = astra.scheduler.srun("alice", 2, smoke)
            return (0 if result.success else 1, result.output)

        pipe.stage("build").jobs.append(CiJob("build-image", build_job))
        pipe.stage("validate").jobs.append(CiJob("smoke-test", validate_job))
        result = server.trigger(pipe)
        assert result.passed, result.report()
