"""Fault matrix for the registry fleet.

The same seeded workload replayed under shard-crash and registry-flake
plans must converge (reads re-route to replicas, flakes retry to
completion), deploys must land digest-identical node stores, and no byte
may ever be double-counted in shard stats — not by replica fill, not by
retried pulls.

Also the satellite regression: the broadcast's registry path used to
hardcode one origin link; with a fleet it must route every pull through
ring placement.
"""

from dataclasses import replace

import pytest

from repro.archive import TarArchive, TarMember
from repro.cluster import (
    RegistryFleet,
    distribute_blobs,
    make_deploy_topology,
    make_machine,
)
from repro.containers import ImageConfig, Registry
from repro.kernel import FileType
from repro.sim import FaultPlan, WorkloadSpec, run_workload

LAYER_SIZES = (3000, 1500)


def layer(name, data=b"payload"):
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0,
                                 data=data)])


SPEC = WorkloadSpec(seed=11, rate=30.0, duration=4.0, zipf_s=1.1,
                    images=[f"app:v{i}" for i in range(4)],
                    tenants=[("alice", 3.0), ("bob", 1.0)])


def make_fleet(*, queue_limit=None):
    fleet = RegistryFleet("site", n_shards=4, replicas=2,
                          queue_limit=queue_limit)
    for i, ref in enumerate(SPEC.refs()):
        fleet.push(ref, ImageConfig(),
                   [layer("bin", bytes([i % 251]) * LAYER_SIZES[0]),
                    layer("lib", bytes([(i * 7) % 251]) * LAYER_SIZES[1])])
    return fleet


def shard_pull_bytes(fleet):
    return sum(s.registry.stats.bytes_pulled for s in fleet.shards)


def served_bytes(fleet):
    return sum(s.stats.served_bytes for s in fleet.shards)


def image_bytes(fleet):
    ref = SPEC.refs()[0]
    return sum(fleet.blob_size(d) for d in fleet.image_blob_digests(ref))


CRASH_PLAN = FaultPlan(seed=11).add_node_crash("site.s01", 1.0)
FLAKE_PLAN = FaultPlan(seed=11).add_registry_flake(0.5, 0.9)


class TestWorkloadFaultMatrix:
    def test_shard_crash_reroutes_to_replicas(self):
        fleet = make_fleet()
        report = run_workload(fleet, SPEC, fault_plan=CRASH_PLAN)
        assert report.completed == report.offered
        assert report.failed == 0 and report.dropped == 0

    def test_registry_flake_retries_to_completion(self):
        fleet = make_fleet()
        report = run_workload(fleet, SPEC, fault_plan=FLAKE_PLAN)
        assert report.completed == report.offered
        assert report.faults > 0 and report.retries > 0
        assert report.dropped == 0

    @pytest.mark.parametrize("plan_key", ["crash", "flake", "clean"])
    def test_seeded_replay_is_identical(self, plan_key):
        plans = {"crash": lambda: FaultPlan(seed=11).add_node_crash(
                     "site.s01", 1.0),
                 "flake": lambda: FaultPlan(seed=11).add_registry_flake(
                     0.5, 0.9),
                 "clean": lambda: None}
        dicts = []
        for _ in range(2):
            fleet = make_fleet()
            plan = plans[plan_key]()
            dicts.append(run_workload(fleet, SPEC,
                                      fault_plan=plan).as_dict())
        assert dicts[0] == dicts[1]

    @pytest.mark.parametrize("plan_key", ["crash", "flake", "clean"])
    def test_zero_double_counted_bytes(self, plan_key):
        """Every served byte appears exactly once in the shard stats:
        front-door pulls == shard registry pulls == shard served bytes ==
        completed requests x image bytes.  Failed attempts (flakes,
        overloads) and replica fill must not inflate any of them."""
        plans = {"crash": lambda: FaultPlan(seed=11).add_node_crash(
                     "site.s01", 1.0),
                 "flake": lambda: FaultPlan(seed=11).add_registry_flake(
                     0.5, 0.9),
                 "clean": lambda: None}
        fleet = make_fleet()
        # replica fill never masquerades as client traffic
        assert shard_pull_bytes(fleet) == 0
        assert fleet.stats.bytes_pulled == 0
        assert fleet.rebalance_bytes > 0
        report = run_workload(fleet, SPEC, fault_plan=plans[plan_key]())
        expected = report.completed * image_bytes(fleet)
        assert fleet.stats.bytes_pulled == expected
        assert shard_pull_bytes(fleet) == expected
        assert served_bytes(fleet) == expected

    def test_backpressure_rejections_reserve_nothing(self):
        fleet = make_fleet(queue_limit=2)
        hot = WorkloadSpec(seed=3, rate=400.0, duration=1.0,
                           images=SPEC.images, tenants=SPEC.tenants)
        report = run_workload(fleet, hot, fault_plan=None)
        assert report.overloads > 0
        assert report.completed + report.dropped == report.offered
        expected = report.completed * image_bytes(fleet)
        assert fleet.stats.bytes_pulled == expected
        assert shard_pull_bytes(fleet) == expected
        rejected = sum(s.stats.rejected for s in fleet.shards)
        assert rejected >= report.overloads


class TestDeployConvergence:
    def node_trees(self, plan, strategy="tree"):
        fleet = make_fleet()
        ref = SPEC.refs()[0]
        digests = fleet.image_blob_digests(ref)
        nodes = [make_machine(f"cn{i}") for i in range(8)]
        topo = make_deploy_topology(fleet, nodes)
        report = distribute_blobs(fleet, digests, nodes, topo,
                                  strategy=strategy, fault_plan=plan)
        trees = {n.hostname: sorted(n.content_store.digests())
                 for n in nodes}
        return trees, report, fleet

    def test_shard_crash_converges_digest_identical(self):
        clean, _, _ = self.node_trees(None)
        crashed, report, _ = self.node_trees(
            FaultPlan(seed=11).add_node_crash("site.s01", 0.0))
        assert crashed == clean
        assert not report.crashed  # compute nodes all survived

    def test_registry_flake_converges_digest_identical(self):
        clean, _, _ = self.node_trees(None)
        flaked, report, _ = self.node_trees(
            FaultPlan(seed=11).add_registry_flake(0.0, 0.05),
            strategy="registry")
        assert flaked == clean
        assert report.retries > 0

    def test_retried_pulls_count_shard_bytes_once(self):
        _, report, fleet = self.node_trees(
            FaultPlan(seed=11).add_registry_flake(0.0, 0.05),
            strategy="registry")
        assert report.retries > 0
        assert shard_pull_bytes(fleet) == report.registry_egress_bytes


class TestLedgerUnderFaults:
    """Satellite: ledger == stored bytes through the whole fault matrix.

    The workload runs against *registered* tenants so every push is
    quota-charged; after crash, flake, and clean replays the charged
    bytes must equal the resident bytes of each tenant's attributed
    digests — the transactional push may never leak a phantom charge."""

    CHARGED_SPEC = replace(SPEC, tokens={"alice": "alice", "bob": "bob"})

    def charged_fleet(self):
        fleet = RegistryFleet("site", n_shards=4, replicas=2)
        for name, _ in SPEC.tenants:
            fleet.add_tenant(name, token=name, quota_bytes=1_000_000)
        for i, ref in enumerate(SPEC.refs()):
            tenant = ref.split("/", 1)[0]
            fleet.push(ref, ImageConfig(),
                       [layer("bin", bytes([i % 251]) * LAYER_SIZES[0]),
                        layer("lib",
                              bytes([(i * 7) % 251]) * LAYER_SIZES[1])],
                       token=tenant)
        return fleet

    def assert_ledger_equals_stored(self, fleet):
        for tenant in fleet.tenants.values():
            stored = 0
            for digest in tenant.digests:
                assert fleet.has_blob(digest), \
                    f"{tenant.name} charged for unstored {digest[:19]}..."
                stored += fleet.blob_size(digest)
            assert tenant.bytes_used == stored, \
                f"{tenant.name}: charged {tenant.bytes_used}, " \
                f"stored {stored}"

    @pytest.mark.parametrize("plan_key", ["crash", "flake", "clean"])
    def test_ledger_equals_stored_bytes(self, plan_key):
        plans = {"crash": lambda: FaultPlan(seed=11).add_node_crash(
                     "site.s01", 1.0),
                 "flake": lambda: FaultPlan(seed=11).add_registry_flake(
                     0.5, 0.9),
                 "clean": lambda: None}
        fleet = self.charged_fleet()
        self.assert_ledger_equals_stored(fleet)
        report = run_workload(fleet, self.CHARGED_SPEC,
                              fault_plan=plans[plan_key]())
        assert report.completed > 0
        self.assert_ledger_equals_stored(fleet)

    def test_mid_workload_crash_push_rolls_back_cleanly(self):
        """A push that fails because its primary shard is down must not
        move any tenant's ledger — replayed here on the charged fleet."""
        fleet = self.charged_fleet()
        before = {n: fleet.tenant_stats(n)["bytes_used"]
                  for n, _ in SPEC.tenants}
        fleet.crash_shard("site.s01")
        fleet.crash_shard("site.s02")
        fleet.crash_shard("site.s03")
        failed = 0
        for seed in range(32):
            try:
                fleet.push(f"alice/probe:v{seed}", ImageConfig(),
                           [layer(f"p{seed}", bytes([seed]) * 2500)],
                           token="alice")
            except Exception:
                failed += 1
        assert failed > 0      # one live shard can't hold every ring slot
        self.assert_ledger_equals_stored(fleet)
        after = {n: fleet.tenant_stats(n)["bytes_used"]
                 for n, _ in SPEC.tenants}
        assert after["bob"] == before["bob"]


class TestBroadcastFleetRouting:
    """Satellite regression: no single-origin assumption left."""

    def two_shard_fleet(self):
        fleet = RegistryFleet("site", n_shards=2, replicas=1)
        fleet.push("alice/app:v1", ImageConfig(),
                   [layer("bin", b"b" * 4000), layer("lib", b"l" * 2000)])
        digests = fleet.image_blob_digests("alice/app:v1")
        by_shard = {d: fleet.blob_holders(d)[0] for d in digests}
        if len(set(by_shard.values())) < 2:
            pytest.skip("blobs hashed to one shard; pick other layers")
        return fleet, digests, by_shard

    def test_registry_strategy_routes_per_blob_placement(self):
        fleet, digests, by_shard = self.two_shard_fleet()
        nodes = [make_machine(f"cn{i}") for i in range(4)]
        topo = make_deploy_topology(fleet, nodes)
        report = distribute_blobs(fleet, digests, nodes, topo,
                                  strategy="registry")
        srcs = {t.digest: t.src for t in report.transfers}
        for d in digests:
            assert srcs[d] == by_shard[d]
        assert len({t.src for t in report.transfers}) == 2

    def test_tree_root_pull_honors_placement(self):
        fleet, digests, by_shard = self.two_shard_fleet()
        nodes = [make_machine(f"cn{i}") for i in range(8)]
        topo = make_deploy_topology(fleet, nodes)
        report = distribute_blobs(fleet, digests, nodes, topo,
                                  strategy="tree")
        for d in digests:
            root_pulls = [t for t in report.transfers
                          if t.digest == d and t.src.startswith("site.")]
            assert len(root_pulls) == 1
            assert root_pulls[0].src == by_shard[d]
        assert all(n.content_store.has(d) for n in nodes for d in digests)

    def test_single_registry_path_is_unchanged(self):
        registry = Registry("solo")
        registry.push("app:v1", ImageConfig(),
                      [layer("bin", b"b" * 4000)])
        digests = registry.image_blob_digests("app:v1")
        nodes = [make_machine(f"cn{i}") for i in range(4)]
        topo = make_deploy_topology(registry, nodes)
        report = distribute_blobs(registry, digests, nodes, topo,
                                  strategy="tree")
        root_srcs = {t.src for t in report.transfers
                     if not t.src.startswith("cn")}
        assert root_srcs == {"solo"}
