"""Figure 6 deploy-phase runtime choices (§4.2: 'originally demonstrated
with Singularity, however any HPC container runtime ... could also be
used')."""

import pytest

from repro.cluster import astra_build_workflow, make_astra

ATSE = "FROM centos:7\nRUN yum install -y gcc openmpi hdf5 atse\n"


@pytest.fixture
def astra(world_multiarch):
    return make_astra(world_multiarch, n_compute=2)


def test_deploy_with_singularity(astra):
    rep = astra_build_workflow(astra, "alice", ATSE, "atse", n_nodes=2,
                               runtime="singularity")
    assert rep.success, rep.phases
    assert "[rank 1] ATSE on astra-cn002 (aarch64)" in rep.deploy.output


def test_deploy_with_charliecloud(astra):
    rep = astra_build_workflow(astra, "alice", ATSE, "atse", n_nodes=2,
                               runtime="charliecloud")
    assert rep.success


def test_unknown_runtime_rejected(astra):
    from repro.cluster.astra import WorkflowError
    with pytest.raises(WorkflowError):
        astra_build_workflow(astra, "alice", ATSE, "atse",
                             runtime="kubernetes")
