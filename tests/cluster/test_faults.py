"""Fault injection through the push -> broadcast -> deploy pipeline.

The acceptance invariant: any seeded fault plan that leaves the registry
reachable converges to node trees digest-identical to the fault-free run,
and the same seed reproduces the identical report twice.
"""

import pytest

from repro.archive import TarArchive, TarMember
from repro.cluster import (
    astra_deploy_cli,
    distribute_blobs,
    make_astra,
    make_deploy_topology,
    make_machine,
    make_world,
)
from repro.cluster.astra import astra_build_workflow
from repro.containers import ImageConfig, Registry
from repro.kernel import FileType, Syscalls
from repro.sim import FaultPlan, RetryPolicy

ATSE_DOCKERFILE = """\
FROM centos:7
RUN yum install -y openmpi hdf5
RUN yum install -y atse
"""


def layer(name, data=b"payload"):
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0,
                                 data=data)])


def fresh_fabric(n_nodes=8):
    registry = Registry("site")
    registry.push("app:v1", ImageConfig(),
                  [layer("bin", b"b" * 4000), layer("lib", b"l" * 2000)])
    digests = registry.image_blob_digests("app:v1")
    nodes = [make_machine(f"cn{i}") for i in range(n_nodes)]
    topo = make_deploy_topology(registry, nodes)
    return registry, digests, nodes, topo


def node_trees(nodes):
    return {n.hostname: sorted(n.content_store.digests()) for n in nodes}


class TestFaultFreeEquivalence:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        reports = []
        for plan in (None, FaultPlan()):
            registry, digests, nodes, topo = fresh_fabric()
            rep = distribute_blobs(registry, digests, nodes, topo,
                                   strategy="tree", fault_plan=plan)
            reports.append(rep.as_dict())
        assert reports[0] == reports[1]


class TestBroadcastUnderFaults:
    def test_link_loss_converges_digest_identical(self):
        """The tentpole invariant: retried transfers land the same bytes
        the fault-free run lands, just later."""
        registry, digests, nodes, topo = fresh_fabric()
        clean = distribute_blobs(registry, digests, nodes, topo,
                                 strategy="tree")
        clean_trees = node_trees(nodes)

        plan = FaultPlan(seed=11, link_loss=0.6, horizon=0.3)
        registry, digests, nodes, topo = fresh_fabric()
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree", fault_plan=plan)
        assert rep.faults_injected > 0 and rep.retries > 0
        assert rep.backoff_seconds > 0
        assert not rep.crashed and not rep.degraded
        assert node_trees(nodes) == clean_trees
        assert rep.makespan > clean.makespan  # the faults cost time

    def test_same_seed_replays_byte_identical(self):
        def run():
            plan = FaultPlan(seed=11, link_loss=0.6, flake_rate=1.0,
                             horizon=0.3)
            registry, digests, nodes, topo = fresh_fabric()
            return distribute_blobs(registry, digests, nodes, topo,
                                    strategy="tree",
                                    fault_plan=plan).as_dict()
        assert run() == run()

    def test_relay_crash_reparents_its_subtree(self):
        """Killing a mid-tree relay must not strand its descendants: they
        re-parent onto a surviving holder and still converge."""
        registry, digests, nodes, topo = fresh_fabric(8)
        # cn0 roots the tree; cn1 relays half of it (binomial positions)
        plan = FaultPlan().add_node_crash("cn1", 1e-6)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree", fault_plan=plan)
        assert rep.crashed == ["cn1"]
        assert rep.reparented_subtrees > 0
        assert "cn1" not in rep.node_ready
        survivors = [n for n in nodes if n.hostname != "cn1"]
        for node in survivors:
            assert all(node.content_store.has(d) for d in digests)
        assert set(rep.node_ready) == {n.hostname for n in survivors}

    def test_exhausted_tree_falls_back_to_registry(self):
        """When every in-tree source for a blob is dead, the orphan pulls
        registry-direct rather than waiting forever."""
        registry, digests, nodes, topo = fresh_fabric(2)
        # cn0 pulls from the registry then dies before serving cn1; the
        # only holder is gone, so cn1 must fall back to the registry
        plan = FaultPlan().add_node_crash("cn0", 0.005)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="tree", fault_plan=plan)
        assert rep.crashed == ["cn0"]
        assert rep.registry_fallbacks > 0
        assert all(nodes[1].content_store.has(d) for d in digests)

    def test_registry_flake_retries_the_pull(self):
        registry, digests, nodes, topo = fresh_fabric(2)
        plan = FaultPlan().add_registry_flake(0.0, 0.01)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="registry", fault_plan=plan)
        assert rep.faults_injected > 0 and rep.retries > 0
        for node in nodes:
            assert all(node.content_store.has(d) for d in digests)
        # the pulls waited out the flake window
        assert all(t >= 0.01 for t in rep.node_ready.values())

    def test_retry_budget_exhaustion_degrades_the_node(self):
        registry, digests, nodes, topo = fresh_fabric(2)
        # cn1's link is down and the policy allows no retries at all
        plan = FaultPlan().add_link_down("cn1", 0.0, 1e9)
        rep = distribute_blobs(registry, digests, nodes, topo,
                               strategy="registry", fault_plan=plan,
                               retry_policy=RetryPolicy(budget=0))
        assert rep.degraded == ["cn1"]
        assert "cn1" not in rep.node_ready
        assert all(nodes[0].content_store.has(d) for d in digests)


class TestWorkflowUnderFaults:
    def run_workflow(self, plan, n=8):
        world = make_world()
        cluster = make_astra(world, n_compute=n)
        report = astra_build_workflow(cluster, "alice", ATSE_DOCKERFILE,
                                      "app", n_nodes=n, fault_plan=plan)
        return report, node_trees(cluster.scheduler.nodes)

    def test_faulty_deploy_converges_digest_identical(self):
        clean, clean_trees = self.run_workflow(None)
        assert clean.success and not clean.degraded

        plan = FaultPlan(seed=7, link_loss=0.5, flake_rate=1.0)
        faulty, trees = self.run_workflow(plan)
        assert faulty.success
        assert faulty.faults_injected > 0 and faulty.retries > 0
        assert not faulty.degraded
        assert trees == clean_trees
        assert faulty.deploy_makespan > clean.deploy_makespan

    def test_node_crash_degrades_but_survivors_succeed(self):
        plan = FaultPlan(seed=3).add_node_crash("astra-cn003", 1e-4)
        report, _ = self.run_workflow(plan)
        assert report.success          # survivors all ran
        assert report.degraded
        assert report.degraded_nodes == ["astra-cn003"]
        assert report.deploy.skipped == ["astra-cn003"]
        assert report.distribution.reparented_subtrees > 0

    def test_push_retries_through_a_flake_window(self):
        plan = FaultPlan().add_registry_flake(0.0, 0.01)
        report, _ = self.run_workflow(plan, n=2)
        assert report.push_ok and report.success
        assert report.push_attempts > 1
        assert report.retries > 0

    def test_same_seed_reproduces_the_workflow_report(self):
        plan_spec = dict(seed=21, link_loss=0.4, flake_rate=1.0)
        a, trees_a = self.run_workflow(FaultPlan(**plan_spec))
        b, trees_b = self.run_workflow(FaultPlan(**plan_spec))
        assert a.distribution.as_dict() == b.distribution.as_dict()
        assert a.deploy_makespan == b.deploy_makespan
        assert a.faults_injected == b.faults_injected
        assert a.phases == b.phases
        assert trees_a == trees_b


class TestFaultCli:
    @pytest.fixture
    def cluster(self):
        world = make_world()
        cluster = make_astra(world, n_compute=4)
        alice = cluster.login.login("alice")
        Syscalls(alice).write_file("/home/alice/Dockerfile",
                                   ATSE_DOCKERFILE.encode())
        return cluster

    def test_fault_plan_flag(self, cluster):
        status, text = astra_deploy_cli(
            cluster, ["--fault-plan", "seed=7,link-loss=0.5,flake=0:0.01",
                      "--retries", "6", "-t", "app",
                      "-f", "/home/alice/Dockerfile", "alice"])
        assert status == 0, text
        assert "faults:" in text and "retries" in text

    def test_bad_fault_plan_rejected(self, cluster):
        status, text = astra_deploy_cli(
            cluster, ["--fault-plan=bogus-token", "-t", "app",
                      "-f", "/home/alice/Dockerfile", "alice"])
        assert status == 1
        assert "fault token" in text

    def test_fault_free_output_stays_quiet(self, cluster):
        status, text = astra_deploy_cli(
            cluster, ["-t", "app", "-f", "/home/alice/Dockerfile",
                      "alice"])
        assert status == 0, text
        assert "faults:" not in text

    def test_ch_image_fault_plan_needs_parallel(self):
        from repro.core.cli import ch_image_cli
        from repro.core.builder import ChImage
        world = make_world(arches=("x86_64",))
        login = make_machine("login1", network=world.network)
        alice = login.login("alice")
        Syscalls(alice).write_file("/home/alice/Dockerfile",
                                   b"FROM centos:7\nRUN echo hi\n")
        ch = ChImage(login, alice, cache=True)
        status, text = ch_image_cli(
            ch, ["build", "--fault-plan", "worker-crash=0@1e-9",
                 "-t", "app", "-f", "/home/alice/Dockerfile", "."])
        assert status == 1
        assert "--parallel" in text
