"""Scheduler accounting, failure paths, and the §3.1 shell-descent
invariant — in both sequential and simulated-parallel modes."""

import pytest

from repro.cluster import JobResult, Scheduler, SchedulerError, make_machine
from repro.sim import SimEngine


@pytest.fixture
def nodes(world):
    return [make_machine(f"cn{i}", network=world.network) for i in range(4)]


class TestAccounting:
    def test_multi_job_bookkeeping(self, nodes):
        sched = Scheduler(nodes)
        r1 = sched.srun("alice", 2, lambda n, r, l: (0, f"{r};"))
        r2 = sched.srun("bob", 4, lambda n, r, l: (0, ""))
        assert (r1.job_id, r2.job_id) == (1, 2)
        assert [j.job_id for j in sched.completed] == [1, 2]
        assert r1.output == "0;1;"
        assert r1.nodes == [n.hostname for n in nodes[:2]]

    def test_partial_allocation_leaves_nodes_free(self, nodes):
        sched = Scheduler(nodes)
        seen_free = []
        ran_on = []

        def fn(node, rank, login):
            ran_on.append(node.hostname)
            seen_free.append(set(sched.free_nodes()))
            return 0, ""

        sched.srun("alice", 2, fn)
        assert ran_on == ["cn0", "cn1"]
        # while the job ran, exactly the unallocated nodes were free
        assert seen_free == [{"cn2", "cn3"}] * 2
        assert set(sched.free_nodes()) == {n.hostname for n in nodes}

    def test_failed_status_does_not_raise(self, nodes):
        sched = Scheduler(nodes)
        result = sched.srun("alice", 2,
                            lambda n, r, l: (1 if r == 1 else 0, ""))
        assert not result.success
        assert result.rank_statuses == [0, 1]

    def test_success_requires_every_rank_status(self):
        partial = JobResult(1, ["cn0", "cn1"], ["out"], [0])
        assert not partial.success
        failed = JobResult(1, ["cn0"], [""], [0], error="boom")
        assert not failed.success


class TestFailurePropagation:
    def test_exception_records_partial_result(self, nodes):
        sched = Scheduler(nodes)

        def fn(node, rank, login):
            if rank == 1:
                raise RuntimeError("rank 1 exploded")
            return 0, f"rank {rank} ok\n"

        with pytest.raises(RuntimeError):
            sched.srun("alice", 3, fn)
        assert len(sched.completed) == 1
        partial = sched.completed[0]
        assert partial.error == "rank 1 exploded"
        assert not partial.success
        assert partial.rank_outputs == ["rank 0 ok\n"]  # rank 0 did run
        assert partial.nodes == ["cn0", "cn1", "cn2"]   # allocation on record
        # ...and the allocation was released despite the abort
        assert set(sched.free_nodes()) == {n.hostname for n in nodes}

    def test_missing_account_fails_mid_job(self, world):
        machines = [make_machine("cn0", network=world.network),
                    make_machine("cn1", network=world.network,
                                 users={"bob": 1001})]
        sched = Scheduler(machines)
        with pytest.raises(SchedulerError, match="no account"):
            sched.srun("alice", 2, lambda n, r, l: (0, "ran\n"))
        partial = sched.completed[0]
        assert partial.rank_outputs == ["ran\n"]  # rank 0 completed first

    def test_unknown_mode_rejected(self, nodes):
        with pytest.raises(SchedulerError):
            Scheduler(nodes).srun("alice", 1, lambda n, r, l: (0, ""),
                                  mode="threads")


class TestShellDescentInvariant:
    """§3.1: job processes must descend from the user's login shell.
    The check must *raise* — a bare assert disappears under python -O."""

    def test_violation_raises_scheduler_error(self, nodes):
        def daemonize(node, rank, login):
            # sever the job from the login shell, as a daemon-spawned
            # process tree would be
            del node.kernel.processes[login.pid]
            return 0, ""

        sched = Scheduler(nodes)
        with pytest.raises(SchedulerError, match="3.1") as excinfo:
            sched.srun("alice", 1, daemonize)
        # an AssertionError would vanish under `python -O`; this survives
        assert not isinstance(excinfo.value, AssertionError)

    def test_violation_raises_in_simulated_mode(self, nodes):
        def daemonize(node, rank, login):
            del node.kernel.processes[login.pid]
            return 0, ""

        sched = Scheduler(nodes)
        with pytest.raises(SchedulerError, match="descend"):
            sched.srun("alice", 2, daemonize, mode="simulated")
        assert sched.completed[0].error  # partial result still recorded

    def test_compliant_job_passes_both_modes(self, nodes):
        sched = Scheduler(nodes)
        fn = lambda n, r, l: (0, "ok")
        assert sched.srun("alice", 2, fn).success
        assert sched.srun("alice", 2, fn, mode="simulated").success


class TestSimulatedMode:
    def test_sequential_mode_has_no_makespan(self, nodes):
        result = Scheduler(nodes).srun("alice", 2, lambda n, r, l: (0, ""))
        assert result.mode == "sequential"
        assert result.makespan is None

    def test_rank_ready_sequence_sets_starts(self, nodes):
        sched = Scheduler(nodes)
        result = sched.srun("alice", 2, lambda n, r, l: (0, ""),
                            mode="simulated", rank_ready=[0.0, 1.5])
        assert result.mode == "simulated"
        assert result.rank_starts == [0.0, 1.5]
        assert result.makespan == pytest.approx(1.5, abs=1e-6)
        assert all(f >= s for s, f in
                   zip(result.rank_starts, result.rank_finishes))

    def test_rank_ready_mapping_by_hostname(self, nodes):
        sched = Scheduler(nodes)
        result = sched.srun("alice", 3, lambda n, r, l: (0, ""),
                            mode="simulated",
                            rank_ready={"cn1": 2.0})
        # starts record event order: the two t=0 ranks fire before cn1
        assert result.rank_starts == [0.0, 0.0, 2.0]
        assert result.makespan == pytest.approx(2.0, abs=1e-6)

    def test_compute_cost_scales_with_ticks(self, nodes):
        sched = Scheduler(nodes)

        def busy(node, rank, login):
            from repro.kernel import Syscalls
            sys = Syscalls(login)
            for i in range(10):
                sys.write_file(f"/tmp/f{i}", b"x")
            return 0, ""

        result = sched.srun("alice", 1, busy, mode="simulated",
                            tick_seconds=1.0)
        assert result.rank_finishes[0] - result.rank_starts[0] >= 10.0

    def test_shared_engine_interleaves_with_other_events(self, nodes):
        engine = SimEngine()
        order = []
        engine.at(0.5, order.append, "external")
        sched = Scheduler(nodes)
        result = sched.srun(
            "alice", 2, lambda n, r, l: (order.append(f"rank{r}"), (0, ""))[1],
            mode="simulated", sim=engine, rank_ready=[0.0, 1.0])
        assert order == ["rank0", "external", "rank1"]
        assert result.success
