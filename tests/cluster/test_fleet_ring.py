"""Property tests for the fleet's consistent-hash ring.

The three invariants everything else leans on: placement is a pure
function of (key, shard names, vnodes) so two worlds agree; load is
balanced within a constant of perfect at 10k keys; and growing the ring
moves only ~K/N keys, all of them onto the new shard.
"""

import math

import pytest

from repro.cluster import HashRing
from repro.cluster.fleet import FleetError

KEYS = [f"sha256:key{k}" for k in range(10_000)]
SHARDS = [f"site.s{i:02d}" for i in range(8)]


class TestDeterminism:
    def test_same_shards_same_placement_across_instances(self):
        a = HashRing(SHARDS)
        b = HashRing(SHARDS)
        for key in KEYS[:500]:
            assert a.holders(key, 2) == b.holders(key, 2)

    def test_insertion_order_is_irrelevant(self):
        a = HashRing(SHARDS)
        b = HashRing(reversed(SHARDS))
        for key in KEYS[:500]:
            assert a.holders(key, 3) == b.holders(key, 3)

    def test_holders_are_distinct_and_clamped(self):
        ring = HashRing(SHARDS[:3])
        holders = ring.holders(KEYS[0], 8)
        assert len(holders) == 3
        assert len(set(holders)) == 3

    def test_empty_ring_raises(self):
        with pytest.raises(FleetError):
            HashRing().holders("sha256:x")

    def test_placement_matches_holders(self):
        ring = HashRing(SHARDS[:4])
        placed = ring.placement(KEYS[:50], 2)
        assert placed == {k: ring.holders(k, 2) for k in KEYS[:50]}


class TestBalance:
    #: 64 vnodes lands measured primary imbalance at <= 1.12x the perfect
    #: ceil(K/N) share on 10k keys; 1.25 is the contract with headroom.
    EPSILON = 0.25

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_primary_imbalance_bounded(self, n_shards):
        ring = HashRing(SHARDS[:n_shards])
        counts = {s: 0 for s in ring.shards}
        for key in KEYS:
            counts[ring.holders(key)[0]] += 1
        assert sum(counts.values()) == len(KEYS)
        cap = math.ceil(len(KEYS) / n_shards) * (1 + self.EPSILON)
        assert max(counts.values()) <= cap, counts

    def test_replica_sets_are_spread(self):
        ring = HashRing(SHARDS[:4])
        counts = {s: 0 for s in ring.shards}
        for key in KEYS:
            for holder in ring.holders(key, 2):
                counts[holder] += 1
        # every shard participates in replica duty, none is idle
        assert min(counts.values()) > 0
        cap = math.ceil(2 * len(KEYS) / 4) * (1 + self.EPSILON)
        assert max(counts.values()) <= cap


class TestMinimalMovement:
    def test_adding_a_shard_moves_about_k_over_n(self):
        ring = HashRing(SHARDS[:4])
        before = {k: ring.holders(k)[0] for k in KEYS}
        ring.add("site.s99")
        after = {k: ring.holders(k)[0] for k in KEYS}
        moved = [k for k in KEYS if before[k] != after[k]]
        share = len(KEYS) / 5
        assert 0.5 * share <= len(moved) <= 1.5 * share, len(moved)
        # every relocation lands on the new shard — no churn elsewhere
        assert all(after[k] == "site.s99" for k in moved)

    def test_removal_restores_the_old_placement(self):
        ring = HashRing(SHARDS[:4])
        before = {k: ring.holders(k, 2) for k in KEYS[:1000]}
        ring.add("site.s99")
        ring.remove("site.s99")
        assert {k: ring.holders(k, 2) for k in KEYS[:1000]} == before

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(SHARDS[:4])
        points = list(ring._points)
        ring.add(SHARDS[0])
        ring.remove("site.s99")
        assert ring._points == points
