"""Tenant isolation on the registry fleet.

Private namespaces reject cross-tenant access with an auth error, quota
exhaustion rejects pushes with a *retryable* error, and per-tenant stats
never name another tenant's blob digests.
"""

import pytest

from repro.archive import TarArchive, TarMember
from repro.cas.store import blob_digest
from repro.cluster import RegistryFleet
from repro.cluster.fleet import (
    FleetAuthError,
    FleetError,
    FleetQuotaError,
)
from repro.containers import ImageConfig
from repro.errors import TransientError
from repro.kernel import FileType


def layer(name, data=b"payload"):
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0,
                                 data=data)])


def make_fleet(**kwargs):
    fleet = RegistryFleet("site", n_shards=4, replicas=2, **kwargs)
    # quotas are on *serialized* blob bytes (~2x the member payload)
    fleet.add_tenant("alice", token="tok-alice", quota_bytes=150_000)
    fleet.add_tenant("bob", token="tok-bob", quota_bytes=150_000)
    return fleet


class TestAuth:
    def test_push_without_token_is_denied(self):
        fleet = make_fleet()
        with pytest.raises(FleetAuthError):
            fleet.push("alice/app:v1", ImageConfig(), [layer("bin")])

    def test_cross_tenant_pull_of_private_repo_is_denied(self):
        fleet = make_fleet()
        fleet.push("alice/app:v1", ImageConfig(), [layer("bin")],
                   token="tok-alice")
        with pytest.raises(FleetAuthError):
            fleet.pull("alice/app:v1", token="tok-bob")
        with pytest.raises(FleetAuthError):
            fleet.pull("alice/app:v1")           # anonymous

    def test_owner_pull_succeeds(self):
        fleet = make_fleet()
        fleet.push("alice/app:v1", ImageConfig(),
                   [layer("bin", b"b" * 2000)], token="tok-alice")
        _, layers = fleet.pull("alice/app:v1", token="tok-alice")
        assert len(layers) == 1

    def test_public_tenant_allows_anonymous_pull_not_push(self):
        fleet = make_fleet()
        fleet.add_tenant("pub", token="tok-pub", public=True)
        fleet.push("pub/base:v1", ImageConfig(), [layer("bin")],
                   token="tok-pub")
        _, layers = fleet.pull("pub/base:v1")
        assert len(layers) == 1
        with pytest.raises(FleetAuthError):
            fleet.push("pub/base:v2", ImageConfig(), [layer("bin")])

    def test_unregistered_namespace_stays_open(self):
        fleet = make_fleet()
        fleet.push("carol/app:v1", ImageConfig(), [layer("bin")])
        _, layers = fleet.pull("carol/app:v1")
        assert len(layers) == 1

    def test_auth_rejections_are_counted(self):
        fleet = make_fleet()
        with pytest.raises(FleetAuthError):
            fleet.push("alice/app:v1", ImageConfig(), [layer("bin")],
                       token="wrong")
        assert fleet.tenant_stats("alice")["auth_rejections"] == 1


class TestQuota:
    def test_quota_exhaustion_rejects_push_retryably(self):
        fleet = make_fleet()
        fleet.push("alice/big:v1", ImageConfig(),
                   [layer("bin", b"x" * 60_000)], token="tok-alice")
        with pytest.raises(FleetQuotaError) as err:
            fleet.push("alice/big:v2", ImageConfig(),
                       [layer("bin", b"y" * 60_000)], token="tok-alice")
        # the 503 contract: retryable, composes with RetryPolicy
        assert isinstance(err.value, TransientError)
        assert fleet.tenant_stats("alice")["quota_rejections"] == 1

    def test_rejected_push_charges_nothing_and_stores_nothing(self):
        fleet = make_fleet()
        before = fleet.storage_bytes()
        with pytest.raises(FleetQuotaError):
            fleet.push("alice/big:v1", ImageConfig(),
                       [layer("bin", b"x" * 100_000)], token="tok-alice")
        assert fleet.tenant_stats("alice")["bytes_used"] == 0
        assert fleet.storage_bytes() == before

    def test_duplicate_blobs_charge_once(self):
        fleet = make_fleet()
        blob = layer("bin", b"b" * 2000)
        fleet.push("alice/app:v1", ImageConfig(), [blob],
                   token="tok-alice")
        used = fleet.tenant_stats("alice")["bytes_used"]
        fleet.push("alice/app:v2", ImageConfig(), [blob],
                   token="tok-alice")
        assert fleet.tenant_stats("alice")["bytes_used"] == used

    def test_unknown_tenant_stats_raise(self):
        with pytest.raises(FleetError):
            make_fleet().tenant_stats("nobody")


class TestStatsIsolation:
    def test_per_tenant_stats_never_leak_other_digests(self):
        fleet = make_fleet()
        alice_blob = layer("bin", b"alice-data" * 100)
        bob_blob = layer("bin", b"bob-data" * 100)
        fleet.push("alice/app:v1", ImageConfig(), [alice_blob],
                   token="tok-alice")
        fleet.push("bob/app:v1", ImageConfig(), [bob_blob],
                   token="tok-bob")
        alice_digests = set(fleet.tenant_stats("alice")["digests"])
        bob_digests = set(fleet.tenant_stats("bob")["digests"])
        assert alice_digests and bob_digests
        assert not alice_digests & bob_digests
        assert blob_digest(bob_blob.serialize()) not in alice_digests
        assert blob_digest(alice_blob.serialize()) not in bob_digests

    def test_counters_are_per_tenant(self):
        fleet = make_fleet()
        fleet.push("alice/app:v1", ImageConfig(),
                   [layer("bin", b"a" * 1000)], token="tok-alice")
        fleet.pull("alice/app:v1", token="tok-alice")
        stats = fleet.tenant_stats("alice")
        assert (stats["pushes"], stats["pulls"]) == (1, 1)
        bob = fleet.tenant_stats("bob")
        assert (bob["pushes"], bob["pulls"]) == (0, 0)
        assert bob["bytes_used"] == 0
