"""The tenant ledger invariant: charged bytes always equal stored bytes.

The regression this file pins: the fleet used to charge the quota
ledger *before* placing blobs, so a push that failed mid-request (no
live shard for one of its blobs) left ``bytes_used`` and ``digests``
charged for bytes that were never stored — a leak that compounds until
the tenant's quota is exhausted by phantom data.  Charging is now
transactional (reserve, place, commit; placements roll back on
failure), and restored shards backfill *metadata* — manifests,
signatures, attestation records — not just blobs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.archive import TarArchive, TarMember
from repro.cas.store import blob_digest
from repro.cluster import RegistryFleet
from repro.cluster.fleet import FleetError, FleetQuotaError
from repro.containers import ImageConfig
from repro.kernel import FileType
from repro.supply import KeyRegistry, build_attestations  # noqa: F401


def layer(name, data):
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0,
                                 data=data)])


def ledger_is_consistent(fleet):
    """Every tenant's ``bytes_used`` equals the total size of its
    *unique* attributed digests, and every attributed digest is
    resident on at least one shard."""
    for tenant in fleet.tenants.values():
        total = 0
        for digest in tenant.digests:
            assert fleet.has_blob(digest), \
                f"{tenant.name} charged for unstored {digest[:19]}..."
            total += fleet.blob_size(digest)
        assert tenant.bytes_used == total, \
            f"{tenant.name}: bytes_used={tenant.bytes_used} != {total}"
    return True


def primary_of(fleet, archive):
    return fleet.blob_holders(blob_digest(archive.serialize()))[0]


def probe_layers(fleet, shard_name, *, off, on):
    """Distinct probe layers split by primary holder: *off* of them
    placed away from *shard_name*, then *on* of them placed on it —
    placement is a pure ring function, so probing payloads finds both."""
    misses, hits = [], []
    for seed in range(128):
        cand = layer(f"p{seed}", bytes([seed % 251]) * 2000)
        bucket = hits if primary_of(fleet, cand) == shard_name else misses
        bucket.append(cand)
        if len(misses) >= off and len(hits) >= on:
            return misses[:off] + hits[:on]
    raise AssertionError("ring never split the probe layers as wanted")


class TestQuotaLeakRegression:
    def make_fleet(self):
        fleet = RegistryFleet("site", n_shards=2, replicas=1)
        fleet.add_tenant("alice", token="tok", quota_bytes=500_000)
        return fleet

    def failing_push(self, fleet):
        """A push whose blobs straddle the crashed shard: early layers
        land on the live shard, then placement of the doomed one fails
        — the partial placement must roll back."""
        doomed_shard = fleet.shards[0].name
        layers = probe_layers(fleet, doomed_shard, off=3, on=1)
        fleet.crash_shard(doomed_shard)
        with pytest.raises(FleetError):
            fleet.push("alice/app:v1", ImageConfig(), layers, token="tok")

    def test_failed_push_charges_nothing(self, ):
        fleet = self.make_fleet()
        self.failing_push(fleet)
        stats = fleet.tenant_stats("alice")
        assert stats["bytes_used"] == 0
        assert stats["digests"] == []
        assert ledger_is_consistent(fleet)

    def test_failed_push_stores_nothing(self):
        """Rollback drops the partial placements too: no orphan blobs,
        and the front-door push counters return to their prior state."""
        fleet = self.make_fleet()
        before = (fleet.storage_bytes(), fleet.stats.blobs_pushed,
                  fleet.stats.bytes_pushed)
        self.failing_push(fleet)
        assert (fleet.storage_bytes(), fleet.stats.blobs_pushed,
                fleet.stats.bytes_pushed) == before

    def test_failed_push_leaves_prior_images_alone(self):
        """Blobs shared with an earlier image survive the rollback —
        only placements the failed request introduced are undone."""
        fleet = self.make_fleet()
        shared = layer("shared", b"s" * 3000)
        fleet.push("alice/base:v1", ImageConfig(), [shared], token="tok")
        used = fleet.tenant_stats("alice")["bytes_used"]
        # crash the shard *not* serving the shared blob, and doom a
        # fresh layer that routes to it
        doomed_shard = next(s.name for s in fleet.shards
                            if s.name != primary_of(fleet, shared))
        (doomed,) = probe_layers(fleet, doomed_shard, off=0, on=1)
        fleet.crash_shard(doomed_shard)
        with pytest.raises(FleetError):
            fleet.push("alice/app:v1", ImageConfig(), [shared, doomed],
                       token="tok")
        assert fleet.tenant_stats("alice")["bytes_used"] == used
        assert fleet.has_blob(blob_digest(shared.serialize()))
        config, layers = fleet.pull("alice/base:v1", token="tok")
        assert len(layers) == 1
        assert ledger_is_consistent(fleet)

    def test_quota_rejection_still_charges_nothing(self):
        fleet = RegistryFleet("site", n_shards=2, replicas=1)
        fleet.add_tenant("alice", token="tok", quota_bytes=1000)
        with pytest.raises(FleetQuotaError):
            fleet.push("alice/big:v1", ImageConfig(),
                       [layer("bin", b"x" * 5000)], token="tok")
        assert fleet.tenant_stats("alice")["bytes_used"] == 0
        assert fleet.storage_bytes() == 0
        assert ledger_is_consistent(fleet)

    def test_attestation_blobs_ride_the_same_transaction(self):
        """When the attestation blob cannot be placed, the layers that
        landed first are rolled back with it."""
        fleet = self.make_fleet()
        att = b'{"format":"repro.sbom/v1","packages":[]}'
        doomed_shard = fleet.blob_holders(blob_digest(att))[0]
        # the layer itself lands fine — only the attestation can't place
        (lay,) = probe_layers(fleet, doomed_shard, off=1, on=0)
        fleet.crash_shard(doomed_shard)
        with pytest.raises(FleetError):
            fleet.push("alice/app:v1", ImageConfig(), [lay], token="tok",
                       attestations={"sbom": att})
        assert fleet.tenant_stats("alice")["bytes_used"] == 0
        assert fleet.storage_bytes() == 0


class TestManifestBackfill:
    def push_while_down(self):
        fleet = RegistryFleet("site", n_shards=3, replicas=2)
        fleet.signer = KeyRegistry(seed=0).signer("site-ci")
        fleet.crash_shard("site.s00")
        fleet.push("hpc/app:v1", ImageConfig(),
                   [layer("bin", b"x" * 2000)],
                   attestations={"sbom": b'{"format":"repro.sbom/v1"}'})
        return fleet

    def test_restored_shard_backfills_manifests(self):
        """The regression: restore used to re-fill *blobs* only, so a
        restored shard would serve bytes it could not name — manifest
        lookups routed to it failed on images pushed while it was down."""
        fleet = self.push_while_down()
        fleet.restore_shard("site.s00")
        restored = fleet.shards[0].registry
        assert restored.has("hpc/app:v1")
        assert restored.manifest("hpc/app:v1").layers

    def test_restored_shard_backfills_signatures_and_attestations(self):
        fleet = self.push_while_down()
        fleet.restore_shard("site.s00")
        restored = fleet.shards[0].registry
        assert len(restored.signatures_of("hpc/app:v1")) == 1
        assert "sbom" in restored.attestation_digests("hpc/app:v1")

    def test_fleet_serves_metadata_through_the_restored_shard_alone(self):
        """End to end: after restore, crash every *other* shard — the
        metadata plane routes to the restored shard, which must answer
        manifest and signature lookups by itself (blob reads still
        follow ring placement, which the restored shard may not hold)."""
        fleet = self.push_while_down()
        fleet.restore_shard("site.s00")
        fleet.crash_shard("site.s01")
        fleet.crash_shard("site.s02")
        assert fleet.live_shards() == [fleet.shards[0]]
        assert fleet.has("hpc/app:v1")
        assert len(fleet.signatures_of("hpc/app:v1")) == 1
        assert "sbom" in fleet.attestation_digests("hpc/app:v1")

    def test_pull_works_after_the_round_trip(self):
        fleet = self.push_while_down()
        fleet.restore_shard("site.s00")
        config, layers = fleet.pull("hpc/app:v1")
        assert layers[0].members[0].data == b"x" * 2000


# -- property suite: the ledger invariant under seeded workloads -------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 2),     # tenant index
                  st.integers(0, 15),                     # payload seed
                  st.integers(1, 3)),                     # layer count
        st.tuples(st.just("crash"), st.integers(0, 3)),
        st.tuples(st.just("restore"), st.integers(0, 3)),
    ),
    min_size=1, max_size=20)


class TestLedgerProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_OPS)
    def test_ledger_equals_stored_bytes_under_fault_churn(self, ops):
        """After any interleaving of pushes (some duplicate payloads,
        some rejected by quota, some failed by dead shards) with shard
        crashes and restores, every tenant's ledger equals its unique
        resident attributed bytes."""
        fleet = RegistryFleet("site", n_shards=4, replicas=1)
        names = ["t0", "t1", "t2"]
        for name in names:
            fleet.add_tenant(name, token=name, quota_bytes=60_000)
        version = 0
        for op in ops:
            if op[0] == "push":
                _, who, payload, n_layers = op
                version += 1
                layers = [layer(f"l{i}", bytes([payload + i]) * 1500)
                          for i in range(n_layers)]
                try:
                    fleet.push(f"{names[who]}/app:v{version}",
                               ImageConfig(), layers, token=names[who])
                except (FleetQuotaError, FleetError):
                    pass
            elif op[0] == "crash":
                # never kill the whole fleet: keep one shard live
                if len(fleet.live_shards()) > 1:
                    fleet.crash_shard(f"site.s{op[1]:02d}")
            else:
                fleet.restore_shard(f"site.s{op[1]:02d}")
            assert ledger_is_consistent(fleet)
