"""The CI build farm: concurrent whole-image builds with single-flight."""

import pytest

from repro.cluster import (
    BuildFarm,
    CiError,
    CiPipeline,
    farm_build_stage,
    make_astra,
    make_machine,
    make_world,
)
from repro.cluster.astra import astra_cached_build_workflow
from repro.kernel import Syscalls

APP = """\
FROM centos:7
RUN yum install -y openmpi hdf5
RUN yum install -y atse
"""

OTHER = """\
FROM centos:7
RUN yum install -y gcc
"""


@pytest.fixture
def farm(login, alice):
    return BuildFarm(login, alice, parallelism=4, force_mode="seccomp")


class TestBuildFarm:
    def test_independent_images_build_concurrently(self, farm):
        farm.submit(tag="app", dockerfile=APP, force=True)
        farm.submit(tag="tools", dockerfile=OTHER, force=True)
        report = farm.run()
        assert report.success
        assert all(img.success for img in report.images)
        tasks = report.schedule.tasks
        assert {t.worker for t in tasks} == {0, 1}  # really overlapped
        assert report.makespan < sum(t.finish - t.start for t in tasks)

    def test_identical_images_single_flight(self, farm):
        """Two identical concurrent submissions: one executes, the other
        waits and replays warm — the acceptance-criteria inflight hit."""
        farm.submit(tag="app-a", dockerfile=APP, force=True)
        farm.submit(tag="app-b", dockerfile=APP, force=True)
        report = farm.run()
        assert report.success
        assert report.inflight_hits > 0
        assert report.cache_stats.inflight_hits > 0
        a, b = report.images
        assert not a.deduped and b.deduped
        # the follower's replay was pure cache hits, and both tags exist
        assert b.result.cache_hits == a.result.cache_hits + 2
        for tag in ("app-a", "app-b"):
            assert farm.builder.storage.path_of(tag)

    def test_different_dockerfiles_do_not_collide(self, farm):
        farm.submit(tag="a", dockerfile=APP, force=True)
        farm.submit(tag="b", dockerfile=OTHER, force=True)
        report = farm.run()
        assert report.inflight_hits == 0

    def test_run_is_idempotent(self, farm):
        farm.submit(tag="a", dockerfile=OTHER, force=True)
        assert farm.run() is farm.run()

    def test_submit_after_run_rejected(self, farm):
        farm.submit(tag="a", dockerfile=OTHER, force=True)
        farm.run()
        with pytest.raises(CiError, match="already ran"):
            farm.submit(tag="b", dockerfile=OTHER, force=True)

    def test_failed_image_does_not_sink_the_batch(self, farm):
        farm.submit(tag="bad", dockerfile="FROM nope-such-image:1\n")
        farm.submit(tag="good", dockerfile=OTHER, force=True)
        report = farm.run()
        assert not report.success
        bad, good = report.images
        assert not bad.success and good.success


#: shares APP's first RUN (same Merkle prefix), diverges on the second
APP_VARIANT = """\
FROM centos:7
RUN yum install -y openmpi hdf5
RUN yum install -y gcc
"""


class TestPerImageStats:
    """Cache hit/miss/store attribution per submitted image: which image
    filled the shared cache and which one rode it."""

    def test_attribution_across_prefix_sharing_and_duplicates(self, farm):
        farm.submit(tag="a", dockerfile=APP, force=True)
        farm.submit(tag="b", dockerfile=APP_VARIANT, force=True)
        farm.submit(tag="c", dockerfile=APP, force=True)  # duplicate of a
        report = farm.run()
        assert report.success
        stats = report.per_image_stats()
        # a builds cold: both RUNs miss and store
        assert stats["a"]["misses"] == 2 and stats["a"]["stores"] == 2
        assert stats["a"]["hits"] == 0
        # b shares a's first RUN, pays only for its divergent tail
        assert stats["b"]["hits"] == 1
        assert stats["b"]["misses"] == 1 and stats["b"]["stores"] == 1
        # c is a's single-flight follower: warm replay, zero new work
        assert stats["c"]["hits"] == 2
        assert stats["c"]["misses"] == 0 and stats["c"]["stores"] == 0
        assert stats["c"]["inflight_hits"] == 1
        assert report.images[2].deduped

    def test_slices_sum_to_the_aggregate(self, farm):
        farm.submit(tag="a", dockerfile=APP, force=True)
        farm.submit(tag="b", dockerfile=APP_VARIANT, force=True)
        report = farm.run()
        stats = report.per_image_stats()
        for key in ("hits", "misses", "stores"):
            assert sum(s[key] for s in stats.values()) == \
                getattr(report.cache_stats, key)

    def test_priority_breaks_fifo_ties(self, login, alice):
        farm = BuildFarm(login, alice, parallelism=1,
                         force_mode="seccomp")
        farm.submit(tag="late", dockerfile=OTHER, force=True,
                    priority=10)
        farm.submit(tag="early", dockerfile=APP, force=True, priority=0)
        report = farm.run()
        assert report.success
        by_tag = {t.name: t for t in report.schedule.tasks}
        assert by_tag["early"].start <= by_tag["late"].start


class TestFarmFaults:
    def test_worker_crash_requeues_the_stage(self, login, alice):
        """A crashed worker's image requeues onto a survivor and the batch
        still converges."""
        from repro.sim import FaultPlan
        plan = FaultPlan().add_worker_crash(0, 1e-9)
        farm = BuildFarm(login, alice, parallelism=2,
                         force_mode="seccomp", fault_plan=plan)
        farm.submit(tag="app", dockerfile=APP, force=True)
        farm.submit(tag="tools", dockerfile=OTHER, force=True)
        report = farm.run()
        assert report.success, [i.result and i.result.error
                                for i in report.images]
        assert report.degraded
        assert report.worker_crashes == 1
        assert report.requeues >= 1
        assert report.attempts > len(report.images)
        for tag in ("app", "tools"):
            assert farm.builder.storage.path_of(tag)

    def test_killing_the_leader_promotes_a_waiter(self, login, alice):
        """The single-flight deadlock case: the leader's worker dies while
        a waiter is parked behind its flight.  The waiter must be woken
        and promoted, never left waiting on a result that cannot come."""
        from repro.sim import FaultPlan
        plan = FaultPlan().add_worker_crash(0, 1e-9)
        farm = BuildFarm(login, alice, parallelism=2,
                         force_mode="seccomp", fault_plan=plan)
        farm.submit(tag="app-a", dockerfile=APP, force=True)
        farm.submit(tag="app-b", dockerfile=APP, force=True)
        report = farm.run()   # terminating at all proves no deadlock
        assert report.success
        assert report.worker_crashes == 1 and report.requeues >= 1
        for tag in ("app-a", "app-b"):
            assert farm.builder.storage.path_of(tag)

    def test_crash_budget_exhaustion_fails_the_task(self, login, alice):
        from repro.sim import FaultPlan
        plan = FaultPlan().add_worker_crash(0, 1e-9)
        farm = BuildFarm(login, alice, parallelism=2,
                         force_mode="seccomp", fault_plan=plan,
                         retry_budget=0)
        farm.submit(tag="app", dockerfile=APP, force=True)
        farm.submit(tag="tools", dockerfile=OTHER, force=True)
        report = farm.run()
        assert not report.success
        assert any(t.error for t in report.schedule.tasks)

    def test_all_workers_crashed_raises(self, login, alice):
        from repro.core.build_graph import BuildGraphError
        from repro.sim import FaultPlan
        plan = FaultPlan().add_worker_crash(0, 1e-9)
        farm = BuildFarm(login, alice, parallelism=1,
                         force_mode="seccomp", fault_plan=plan)
        farm.submit(tag="app", dockerfile=OTHER, force=True)
        with pytest.raises(BuildGraphError, match="crashed"):
            farm.run()


class TestFarmInPipeline:
    def test_farm_build_stage(self, login, alice):
        farm = BuildFarm(login, alice, parallelism=2, force_mode="seccomp")
        farm.submit(tag="app-a", dockerfile=APP, force=True)
        farm.submit(tag="app-b", dockerfile=APP, force=True)
        pipe = CiPipeline("nightly")
        farm_build_stage(pipe, farm)
        result = pipe.run()
        assert result.passed, result.report()
        outputs = [j.output for j in pipe.stages[0].jobs]
        assert any("single-flight" in o for o in outputs)

    def test_empty_farm_rejected(self, login, alice):
        farm = BuildFarm(login, alice)
        with pytest.raises(CiError, match="no submitted images"):
            farm_build_stage(CiPipeline("p"), farm)

    def test_failure_reported_per_job(self, login, alice):
        farm = BuildFarm(login, alice, force_mode="seccomp")
        farm.submit(tag="bad", dockerfile="FROM nope-such-image:1\n")
        pipe = CiPipeline("p")
        farm_build_stage(pipe, farm)
        result = pipe.run()
        assert not result.passed
        assert "FAILED" in pipe.stages[0].jobs[0].output


MULTISTAGE_ATSE = """\
FROM centos:7 AS deps
RUN yum install -y openmpi hdf5

FROM centos:7 AS toolchain
RUN yum install -y gcc

FROM deps
COPY --from=toolchain /etc/os-release /toolchain-marker
RUN yum install -y atse
"""


class TestAstraParallelBuild:
    def test_workflow_reports_build_makespan(self):
        world = make_world()
        cluster = make_astra(world, n_compute=2)
        report = astra_cached_build_workflow(
            cluster, "alice", MULTISTAGE_ATSE, "atse",
            build_parallelism=3, deploy_strategy=None)
        assert report.success, report.phases
        assert report.build_parallelism == 3
        assert report.build_makespan > 0.0
        assert 0.0 < report.build_critical_path <= report.build_makespan
        assert any("parallel 3" in p for p in report.phases)

    def test_workflow_default_stays_sequential(self):
        world = make_world()
        cluster = make_astra(world, n_compute=2)
        report = astra_cached_build_workflow(
            cluster, "alice", MULTISTAGE_ATSE, "atse",
            deploy_strategy=None)
        assert report.success, report.phases
        assert report.build_parallelism == 1
        assert report.build_makespan == 0.0

    def test_cli_parallelism_flag(self):
        world = make_world()
        cluster = make_astra(world, n_compute=2)
        from repro.cluster.cli import astra_deploy_cli
        alice = cluster.login.login("alice")
        Syscalls(alice).write_file("/home/alice/Dockerfile",
                                   MULTISTAGE_ATSE.encode())
        status, text = astra_deploy_cli(
            cluster, ["--cached", "--parallelism", "2", "-t", "atse",
                      "-f", "/home/alice/Dockerfile", "alice"])
        assert status == 0, text
        assert "build makespan:" in text

    def test_cli_parallelism_requires_cached(self):
        world = make_world()
        cluster = make_astra(world, n_compute=2)
        from repro.cluster.cli import astra_deploy_cli
        alice = cluster.login.login("alice")
        Syscalls(alice).write_file("/home/alice/Dockerfile",
                                   MULTISTAGE_ATSE.encode())
        status, text = astra_deploy_cli(
            cluster, ["--parallelism", "2", "-t", "atse",
                      "-f", "/home/alice/Dockerfile", "alice"])
        assert status == 1
        assert "--cached" in text
