"""§3.2 option 1: sandboxed build systems and their limitation."""

import pytest

from repro.cluster import EphemeralVmBuilder, make_machine
from repro.containers import Podman

LICENSED_DOCKERFILE = """\
FROM centos:7
RUN echo '[site]' > /etc/yum.repos.d/site.repo
RUN echo 'name=Site licensed' >> /etc/yum.repos.d/site.repo
RUN echo 'baseurl=repo://site/licensed-x86_64' >> /etc/yum.repos.d/site.repo
RUN echo 'enabled=1' >> /etc/yum.repos.d/site.repo
RUN yum install -y vendor-compiler
"""

PUBLIC_DOCKERFILE = "FROM centos:7\nRUN yum install -y openssh\n"


class TestEphemeralVm:
    def test_public_build_works(self, world):
        builder = EphemeralVmBuilder(world)
        build = builder.build(PUBLIC_DOCKERFILE, "pub")
        assert build.success, build.result.text
        assert build.layers  # image returned for pushing

    def test_each_build_gets_fresh_vm(self, world):
        builder = EphemeralVmBuilder(world)
        b1 = builder.build(PUBLIC_DOCKERFILE, "a")
        b2 = builder.build(PUBLIC_DOCKERFILE, "b")
        assert b1.vm_hostname != b2.vm_hostname
        assert builder.vms_provisioned == 2

    def test_privileged_build_is_safe_in_sandbox(self, world):
        """Type I inside the VM: fine, nothing shared (§2: 'in both build
        workflows, privileged build is a reasonable choice')."""
        builder = EphemeralVmBuilder(world)
        build = builder.build(PUBLIC_DOCKERFILE, "pub")
        assert build.success  # root-equivalent docker worked; VM discarded

    def test_licensed_software_unreachable(self, world):
        """§3.2: 'isolated build environments may not be able to access
        needed resources, such as private code or licenses'."""
        builder = EphemeralVmBuilder(world)
        build = builder.build(LICENSED_DOCKERFILE, "lic")
        assert not build.success
        assert "site-internal" in build.result.text or \
            "cannot reach" in build.result.text

    def test_same_build_works_on_site_login_node(self, world):
        """...while the HPC login node, on the site network, reaches the
        license-gated repo — the argument for building on HPC resources."""
        login = make_machine("site-login", network=world.network)
        podman = Podman(login, login.login("alice"))
        result = podman.build(LICENSED_DOCKERFILE, "lic")
        assert result.success, result.text
        tree = podman.buildah.image_tree("lic")
        assert podman.buildah.driver.sys.exists(
            f"{tree}/opt/vendor/bin/vcc")
