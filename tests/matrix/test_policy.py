"""Supply-chain policy over the matrix: attest, sign, gate, reject.

The orchestrator pushes every successful cell and then runs the policy
gate *fleet-side* — a rejected image is recorded on its cell (and fails
the CLI run) before any deploy broadcast can touch it.
"""

import pytest

from repro.cluster import make_astra, make_world
from repro.cluster.fleet import RegistryFleet
from repro.kernel import Syscalls
from repro.matrix import MatrixSpec, astra_matrix_cli, build_matrix
from repro.supply import (
    KeyRegistry,
    PolicyGate,
    SupplyPolicy,
    make_advisory_db,
)

#: one clean cell, one cell that installs the CVE-tripping openssh
SPEC = {
    "name": "fam",
    "tag": "fam/${app}",
    "axes": {"app": ["plain", "ssh"]},
    "template": ("FROM centos:7\n"
                 "RUN echo ${app} > /role\n"
                 "RUN yum install -y ${app}\n"),
    "tenant": "hpc",
}

SPEC_TEXT = """\
name: fam
tag: fam/${app}
tenant: hpc
axis app: plain | ssh
template: |
  FROM centos:7
  RUN echo ${app} > /role
  RUN yum install -y ${app}
"""


def gated_family():
    spec = dict(SPEC)
    spec["template"] = ("FROM centos:7\n"
                       "RUN echo ${app} > /role\n")
    return MatrixSpec.from_dict(spec)


def supply_kit(threshold="high"):
    keys = KeyRegistry(seed=0)
    gate = PolicyGate(
        SupplyPolicy(severity_threshold=threshold,
                     trusted_keys=("site-ci",)),
        keys=keys, advisories=make_advisory_db(seed=0))
    return keys.signer("site-ci"), gate


SSH_TEMPLATE = ("FROM centos:7\n"
                "RUN echo ${app} > /role\n"
                "RUN yum install -y openssh\n")


class TestBuildMatrixPolicy:
    def test_signed_clean_family_passes(self, login, alice):
        signer, gate = supply_kit()
        fleet = RegistryFleet("site", n_shards=2, replicas=2)
        report = build_matrix(login, alice, gated_family(),
                              parallelism=2, fleet=fleet, token="t",
                              attest=True, signer=signer,
                              policy_gate=gate)
        assert report.success and report.policy_ok
        assert all(c.policy == "pass" for c in report.cells)
        assert any("policy gate: 2 pass, 0 rejected" in line
                   for line in report.summary())
        # sign-on-push landed on the shards
        for cell in report.cells:
            assert len(fleet.signatures_of(cell.pushed_ref)) == 1
            assert set(fleet.attestation_digests(cell.pushed_ref)) \
                == {"sbom", "provenance"}

    def test_cve_cell_is_rejected_before_broadcast(self, login, alice):
        signer, gate = supply_kit()
        fleet = RegistryFleet("site", n_shards=2, replicas=2)
        spec = MatrixSpec.from_dict(dict(SPEC, template=SSH_TEMPLATE))
        report = build_matrix(login, alice, spec, parallelism=2,
                              force=True, fleet=fleet, token="t",
                              attest=True, signer=signer,
                              policy_gate=gate)
        assert report.success            # the builds themselves are fine
        assert not report.policy_ok
        assert report.policy_rejections == 2   # every cell installs ssh
        assert all(c.policy == "reject" for c in report.cells)
        assert all("at or above high" in c.policy_error
                   for c in report.cells)
        assert any(line.startswith("REJECTED hpc/fam/")
                   for line in report.summary())
        # rejected fleet-side: zero front-door pull traffic happened
        assert fleet.stats.bytes_pulled == 0

    def test_unsigned_push_is_rejected_by_the_gate(self, login, alice):
        _, gate = supply_kit()
        fleet = RegistryFleet("site", n_shards=1, replicas=1)
        report = build_matrix(login, alice, gated_family(),
                              parallelism=2, fleet=fleet, token="t",
                              attest=True, signer=None,
                              policy_gate=gate)
        assert not report.policy_ok
        assert all("no signature recorded" in c.policy_error
                   for c in report.cells)

    def test_no_gate_means_no_policy_column(self, login, alice):
        fleet = RegistryFleet("site", n_shards=1, replicas=1)
        report = build_matrix(login, alice, gated_family(),
                              parallelism=2, fleet=fleet, token="t")
        assert report.policy_ok
        assert all(c.policy == "" for c in report.cells)
        assert not any("policy gate" in line for line in report.summary())


class TestMatrixCliPolicy:
    @pytest.fixture
    def astra(self):
        return make_astra(make_world(), n_compute=2)

    def write_spec(self, astra, text, path="/home/alice/family.spec"):
        sys = Syscalls(astra.login.login("alice"))
        sys.write_file(path, text.encode())
        return path

    def test_policy_run_rejects_the_ssh_cell(self, astra):
        path = self.write_spec(astra, SPEC_TEXT.replace(
            "RUN yum install -y ${app}", "RUN yum install -y openssh"))
        status, out = astra_matrix_cli(
            astra, ["--registry-shards", "2", "--replicas", "2",
                    "--token", "t", "--policy", "--force",
                    "-f", path, "alice"])
        assert status == 1
        assert "policy gate: 0 pass, 2 rejected" in out
        assert "REJECTED hpc/fam/" in out and "at or above high" in out

    def test_policy_clean_family_exits_zero(self, astra):
        path = self.write_spec(astra, SPEC_TEXT.replace(
            "RUN yum install -y ${app}", "RUN echo ${app}"))
        status, out = astra_matrix_cli(
            astra, ["--registry-shards", "2", "--token", "t",
                    "--policy", "-f", path, "alice"])
        assert status == 0, out
        assert "policy gate: 2 pass, 0 rejected" in out

    def test_policy_threshold_critical_passes_the_ssh_cell(self, astra):
        path = self.write_spec(astra, SPEC_TEXT.replace(
            "RUN yum install -y ${app}", "RUN yum install -y openssh"))
        status, out = astra_matrix_cli(
            astra, ["--registry-shards", "1", "--token", "t", "--policy",
                    "--force", "--policy-threshold", "critical",
                    "-f", path, "alice"])
        assert status == 0, out

    def test_policy_needs_a_fleet(self, astra):
        path = self.write_spec(astra, SPEC_TEXT)
        status, out = astra_matrix_cli(
            astra, ["--policy", "-f", path, "alice"])
        assert status == 1 and "--policy needs a fleet" in out

    def test_bad_threshold_is_rejected_up_front(self, astra):
        path = self.write_spec(astra, SPEC_TEXT)
        status, out = astra_matrix_cli(
            astra, ["--registry-shards", "1", "--policy",
                    "--policy-threshold", "scary", "-f", path, "alice"])
        assert status == 1 and "unknown severity" in out
