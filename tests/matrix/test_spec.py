"""Matrix spec validation: every degenerate shape is a loud error.

The satellite acceptance list: empty axis, single cell, all cells
excluded, duplicate tags — each must raise a clear
:class:`MatrixSpecError`, never produce a silent empty (or N-way
duplicate) build.
"""

import pytest

from repro.matrix import MatrixSpec, MatrixSpecError, expand, parse_spec_text

TEMPLATE = """\
FROM ${base}
RUN echo shared > /s
RUN echo ${app} > /a
"""


def spec_dict(**over):
    d = {
        "name": "fam",
        "tag": "fam/${base}:${app}",
        "axes": {"base": ["centos:7", "debian:buster"],
                 "app": ["a1", "a2"]},
        "template": TEMPLATE,
    }
    d.update(over)
    return d


class TestValidation:
    def test_valid_spec(self):
        spec = MatrixSpec.from_dict(spec_dict())
        assert spec.axis_names == ("base", "app")
        assert spec.cross_product_size == 4

    def test_missing_name(self):
        with pytest.raises(MatrixSpecError, match="non-empty 'name'"):
            MatrixSpec.from_dict(spec_dict(name=""))

    def test_no_axes(self):
        with pytest.raises(MatrixSpecError, match="at least one axis"):
            MatrixSpec.from_dict(spec_dict(axes={}))

    def test_empty_axis(self):
        with pytest.raises(MatrixSpecError,
                           match="axis 'app' is empty"):
            MatrixSpec.from_dict(spec_dict(
                axes={"base": ["centos:7", "debian:buster"], "app": []}))

    def test_duplicate_axis_value(self):
        with pytest.raises(MatrixSpecError, match="repeats value"):
            MatrixSpec.from_dict(spec_dict(
                axes={"base": ["centos:7", "centos:7"],
                      "app": ["a1", "a2"]}))

    def test_axis_unused_by_template_is_an_error(self):
        """An axis that does not shape the image is an N-way duplicate
        build, not a matrix."""
        with pytest.raises(MatrixSpecError,
                           match="axis 'arch' is never used"):
            MatrixSpec.from_dict(spec_dict(
                axes={"base": ["centos:7", "debian:buster"],
                      "app": ["a1", "a2"],
                      "arch": ["x86_64", "aarch64"]}))

    def test_undefined_template_variable(self):
        with pytest.raises(MatrixSpecError,
                           match=r"\$\{mpi\} which is neither an axis"):
            MatrixSpec.from_dict(spec_dict(
                template=TEMPLATE + "RUN echo ${mpi}\n"))

    def test_arg_default_fills_non_axis_variable(self):
        spec = MatrixSpec.from_dict(spec_dict(
            template="ARG prefix=/opt\n" + TEMPLATE
                     + "RUN echo ${prefix}\n"))
        assert spec.cross_product_size == 4

    def test_tag_pattern_must_use_axes(self):
        with pytest.raises(MatrixSpecError,
                           match=r"tag pattern references \$\{ver\}"):
            MatrixSpec.from_dict(spec_dict(tag="fam:${ver}"))

    def test_exclude_unknown_axis(self):
        with pytest.raises(MatrixSpecError, match="unknown axis 'mpi'"):
            MatrixSpec.from_dict(spec_dict(exclude=[{"mpi": "openmpi"}]))

    def test_exclude_unknown_value(self):
        with pytest.raises(MatrixSpecError,
                           match="unknown value 'alpine'"):
            MatrixSpec.from_dict(spec_dict(exclude=[{"base": "alpine"}]))

    def test_include_must_be_full_assignment(self):
        with pytest.raises(MatrixSpecError, match="missing axis"):
            MatrixSpec.from_dict(spec_dict(include=[{"base": "centos:7"}]))

    def test_tenant_is_single_segment(self):
        with pytest.raises(MatrixSpecError, match="single non-empty"):
            MatrixSpec.from_dict(spec_dict(tenant="a/b"))


class TestDegenerateExpansion:
    def test_single_cell_is_not_a_matrix(self):
        spec = MatrixSpec.from_dict(spec_dict(
            axes={"base": ["centos:7"], "app": ["a1"]}))
        with pytest.raises(MatrixSpecError,
                           match="single cell .* is not a matrix"):
            expand(spec)

    def test_all_cells_excluded(self):
        spec = MatrixSpec.from_dict(spec_dict(
            exclude=[{"base": "centos:7"}, {"base": "debian:buster"}]))
        with pytest.raises(MatrixSpecError,
                           match="eliminate all 4 cells"):
            expand(spec)

    def test_duplicate_tags(self):
        """A tag pattern that cannot distinguish cells along some axis
        collides — and the error names both cells and the pattern's
        variables."""
        spec = MatrixSpec.from_dict(spec_dict(tag="fam:${base}"))
        with pytest.raises(MatrixSpecError) as exc:
            expand(spec)
        msg = str(exc.value)
        assert "both render tag 'fam:centos-7'" in msg
        assert "app=a1" in msg and "app=a2" in msg

    def test_include_resurrects_an_excluded_matrix(self):
        """Includes are appended after exclusion, GitHub-matrix style —
        a fully excluded cross product with explicit include rows is
        not empty."""
        spec = MatrixSpec.from_dict(spec_dict(
            exclude=[{"base": "centos:7"}, {"base": "debian:buster"}],
            include=[{"base": "centos:7", "app": "a1"},
                     {"base": "centos:7", "app": "a2"}]))
        variants = expand(spec)
        assert [v.tag for v in variants] == \
            ["fam/centos-7:a1", "fam/centos-7:a2"]


class TestExpansion:
    def test_row_major_order_and_tags(self):
        variants = expand(MatrixSpec.from_dict(spec_dict()))
        assert [v.tag for v in variants] == [
            "fam/centos-7:a1", "fam/centos-7:a2",
            "fam/debian-buster:a1", "fam/debian-buster:a2"]
        assert variants[0].value_map() == \
            {"base": "centos:7", "app": "a1"}
        assert variants[0].label == "base=centos:7 app=a1"

    def test_exclude_drops_matching_cells(self):
        spec = MatrixSpec.from_dict(spec_dict(
            exclude=[{"base": "debian:buster", "app": "a2"}]))
        assert [v.tag for v in expand(spec)] == [
            "fam/centos-7:a1", "fam/centos-7:a2",
            "fam/debian-buster:a1"]

    def test_include_deduplicates_existing_cells(self):
        spec = MatrixSpec.from_dict(spec_dict(
            include=[{"base": "centos:7", "app": "a1"}]))
        assert len(expand(spec)) == 4  # already in the cross product

    def test_include_may_introduce_new_values(self):
        spec = MatrixSpec.from_dict(spec_dict(
            include=[{"base": "centos:7", "app": "nightly"}]))
        variants = expand(spec)
        assert len(variants) == 5
        assert variants[-1].tag == "fam/centos-7:nightly"


class TestTextFormat:
    SPEC_TEXT = """\
# a family
name: fam
tag: fam/${base}:${app}
tenant: hpc
axis base: centos:7 | debian:buster
axis app: a1 | a2
exclude: base=debian:buster app=a2
template: |
  FROM ${base}
  RUN echo shared > /s
  RUN echo ${app} > /a
"""

    def test_roundtrip(self):
        spec = parse_spec_text(self.SPEC_TEXT)
        assert spec.name == "fam"
        assert spec.tenant == "hpc"
        assert spec.axis("base").values == ("centos:7", "debian:buster")
        assert spec.excludes == ((("base", "debian:buster"),
                                  ("app", "a2")),)
        assert spec.template.startswith("FROM ${base}\n")
        assert len(expand(spec)) == 3

    def test_duplicate_axis_line(self):
        with pytest.raises(MatrixSpecError, match="duplicate axis"):
            parse_spec_text("name: x\naxis a: 1 | 2\naxis a: 3 | 4\n")

    def test_unknown_key(self):
        with pytest.raises(MatrixSpecError, match="unknown key 'bogus'"):
            parse_spec_text("bogus: value\n")

    def test_template_needs_block_marker(self):
        with pytest.raises(MatrixSpecError, match="template: \\|"):
            parse_spec_text("template: FROM x\n")

    def test_empty_template_block(self):
        with pytest.raises(MatrixSpecError, match="empty template"):
            parse_spec_text("name: x\ntemplate: |\n")

    def test_bad_exclude_pairs(self):
        with pytest.raises(MatrixSpecError, match="axis=value pairs"):
            parse_spec_text("exclude: what even\n")

    def test_unparseable_line(self):
        with pytest.raises(MatrixSpecError, match="line 1: cannot parse"):
            parse_spec_text("no colon here\n")

    def test_committed_example_parses(self):
        import pathlib
        spec = parse_spec_text(
            (pathlib.Path(__file__).resolve().parents[2] / "examples"
             / "matrix_family.spec").read_text())
        assert spec.cross_product_size == 64
        assert spec.tenant == "hpcsite"
