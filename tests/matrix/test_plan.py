"""Matrix planner tests: Merkle stage-key math on small matrices.

The 2x2 helper family (2 bases x 2 apps, one shared RUN + one per-app
RUN) has 8 executable stage builds of which 6 are unique: the shared
RUN is keyed by its base's chain, so it folds across apps but not
across bases.  Amplification 8/6 = 1.333x, sharing histogram
{1: 4, 2: 2}.
"""

import pytest

from repro.matrix import (
    MatrixSpec,
    MatrixSpecError,
    plan_matrix,
)

TEMPLATE = """\
FROM ${base}
RUN echo shared > /s
RUN echo ${app} > /a
"""


def spec_dict(**over):
    d = {
        "name": "fam",
        "tag": "fam/${base}:${app}",
        "axes": {"base": ["centos:7", "debian:buster"],
                 "app": ["a1", "a2"]},
        "template": TEMPLATE,
    }
    d.update(over)
    return d


def make_plan(**over):
    return plan_matrix(MatrixSpec.from_dict(spec_dict(**over)))


class TestPlanMath:
    def test_two_by_two_key_math(self):
        plan = make_plan()
        assert plan.n_cells == 4
        assert plan.unique_cell_builds == 4
        assert plan.total_stage_builds == 8
        assert plan.unique_stage_builds == 6
        assert plan.amplification == pytest.approx(8 / 6)
        assert plan.sharing_histogram() == {1: 4, 2: 2}

    def test_shared_prefix_folds_within_base_only(self):
        plan = make_plan()
        by_tag = {c.variant.tag: c for c in plan.cells}
        centos_a1 = by_tag["fam/centos-7:a1"].unit_keys
        centos_a2 = by_tag["fam/centos-7:a2"].unit_keys
        debian_a1 = by_tag["fam/debian-buster:a1"].unit_keys
        # shared RUN: same key across apps on one base ...
        assert centos_a1[0] == centos_a2[0]
        # ... but a different key on a different base (different root)
        assert centos_a1[0] != debian_a1[0]
        # per-app RUN never folds
        assert centos_a1[1] != centos_a2[1]

    def test_flight_keys_distinct_per_distinct_dockerfile(self):
        plan = make_plan()
        assert len({c.flight_key for c in plan.cells}) == 4

    def test_config_only_instructions_are_not_stage_builds(self):
        """ENV/WORKDIR extend the Merkle chain (they shape digests) but
        are not executable work units, so they don't count toward
        amplification."""
        plan = make_plan(template=(
            "FROM ${base}\nENV SITE=hpc\nWORKDIR /opt\n"
            "RUN echo shared > /s\nRUN echo ${app} > /a\n"))
        assert plan.total_stage_builds == 8
        assert plan.unique_stage_builds == 6

    def test_force_changes_every_key(self):
        cold = make_plan()
        forced = plan_matrix(MatrixSpec.from_dict(spec_dict()),
                             force=True, force_mode="setuid")
        cold_keys = {k for c in cold.cells for k in c.unit_keys}
        forced_keys = {k for c in forced.cells for k in c.unit_keys}
        assert cold_keys.isdisjoint(forced_keys)
        assert forced.unique_stage_builds == cold.unique_stage_builds

    def test_deeper_shared_prefix_raises_amplification(self):
        deeper = make_plan(template=(
            "FROM ${base}\nRUN echo s1 > /1\nRUN echo s2 > /2\n"
            "RUN echo s3 > /3\nRUN echo ${app} > /a\n"))
        assert deeper.amplification > make_plan().amplification

    def test_multi_stage_template(self):
        """A two-stage template: the builder stage is app-independent,
        so it folds across apps; the COPY in the final stage is keyed
        by its source stage's chain."""
        plan = make_plan(template=(
            "FROM ${base} AS build\nRUN echo tool > /t\n"
            "FROM ${base}\nCOPY --from=build /t /t\n"
            "RUN echo ${app} > /a\n"))
        # per cell: 1 builder RUN + 1 COPY + 1 app RUN = 12 total;
        # builder RUN and COPY fold across apps per base (2+2 unique),
        # app RUN is unique per cell (4) -> 8 unique
        assert plan.total_stage_builds == 12
        assert plan.unique_stage_builds == 8

    def test_as_dict_is_json_shaped(self):
        import json
        d = make_plan().as_dict()
        json.dumps(d)
        assert d["amplification"] == pytest.approx(8 / 6)
        assert d["cells"] == 4


class TestPlanErrors:
    def test_bad_instruction_error_names_the_cell(self):
        with pytest.raises(MatrixSpecError) as exc:
            make_plan(template=(
                "FROM ${base}\nRUN echo ${app}\nBADINSTR x\n"))
        msg = str(exc.value)
        assert "matrix 'fam'" in msg
        assert "base=centos:7 app=a1" in msg
        assert "BADINSTR" in msg
