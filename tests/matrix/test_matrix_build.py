"""End-to-end matrix orchestration: farm, fleet, faults, metrics, CLI.

Uses the 2x2 helper family (8 stage builds, 6 unique, amplification
1.333x) so every accounting number is small enough to assert exactly.
"""

import pytest

from repro.cluster import make_astra, make_machine, make_world
from repro.cluster.fleet import RegistryFleet
from repro.kernel import Syscalls
from repro.matrix import (
    MatrixSpec,
    astra_matrix_cli,
    build_matrix,
    plan_matrix,
)
from repro.obs import attach_tracer
from repro.sim import FaultPlan

TEMPLATE = """\
FROM ${base}
RUN echo shared > /s
RUN echo ${app} > /a
"""

SPEC_TEXT = """\
name: fam
tag: fam/${base}:${app}
tenant: hpc
axis base: centos:7 | debian:buster
axis app: a1 | a2
template: |
  FROM ${base}
  RUN echo shared > /s
  RUN echo ${app} > /a
"""


def spec_dict(**over):
    d = {
        "name": "fam",
        "tag": "fam/${base}:${app}",
        "axes": {"base": ["centos:7", "debian:buster"],
                 "app": ["a1", "a2"]},
        "template": TEMPLATE,
        "tenant": "hpc",
    }
    d.update(over)
    return d


def family():
    return MatrixSpec.from_dict(spec_dict())


class TestBuildMatrix:
    def test_cold_cache_run_matches_the_plan(self, login, alice):
        spec = family()
        plan = plan_matrix(spec)
        report = build_matrix(login, alice, spec, parallelism=2)
        assert report.success
        assert len(report.cells) == 4
        # the static plan is exact on a cold cache
        assert report.measured_stores == plan.unique_stage_builds == 6
        assert report.measured_hits == \
            plan.total_stage_builds - plan.unique_stage_builds == 2
        assert report.amplification == pytest.approx(8 / 6)
        # per-cell attribution slices sum back to the farm totals
        assert sum(c.cache.get("stores", 0) for c in report.cells) == 6
        assert sum(c.cache.get("hits", 0) for c in report.cells) == 2
        for cell in report.cells:
            assert cell.digest.startswith("chain:")
            assert cell.worker >= 0
            assert not cell.deduped      # all four dockerfiles differ

    def test_images_land_in_builder_storage(self, login, alice):
        report = build_matrix(login, alice, family(), parallelism=4)
        storage = report.farm_report  # FarmReport keeps no storage ref;
        assert storage is not None    # digests prove the tags exist
        assert set(report.digests()) == {
            "fam/centos-7:a1", "fam/centos-7:a2",
            "fam/debian-buster:a1", "fam/debian-buster:a2"}

    def test_parallelism_does_not_change_digests(self):
        """Scheduling changes when, never what: fresh worlds at
        parallelism 1 and 4 produce identical per-variant digests."""
        digests = []
        for n in (1, 4):
            world = make_world(arches=("x86_64",))
            login = make_machine("login1", network=world.network)
            rep = build_matrix(login, login.login("alice"), family(),
                               parallelism=n)
            assert rep.success
            digests.append(rep.digests())
        assert digests[0] == digests[1]

    def test_failing_cell_is_an_outcome_not_an_exception(self,
                                                         login, alice):
        spec = MatrixSpec.from_dict(spec_dict(
            axes={"base": ["centos:7", "nope-such-image:1"],
                  "app": ["a1", "a2"]}))
        report = build_matrix(login, alice, spec, parallelism=2)
        assert not report.success
        good = [c for c in report.cells if c.success]
        bad = [c for c in report.cells if not c.success]
        assert len(good) == 2 and len(bad) == 2
        assert all("nope-such-image" in c.tag for c in bad)
        assert all(c.error for c in bad)
        assert any("FAILED" in line for line in report.summary())

    def test_push_into_fleet_under_tenant(self, login, alice):
        fleet = RegistryFleet("site", n_shards=2, replicas=2)
        report = build_matrix(login, alice, family(), parallelism=2,
                              fleet=fleet, token="s3cret")
        assert report.success
        assert report.tenant == "hpc"          # from the spec
        assert report.pushed == 4
        assert all(c.pushed_ref == f"hpc/{c.tag}" for c in report.cells)
        assert "hpc" in fleet.tenants
        assert report.fleet_report["shards"] == 2
        assert any("pushed 4 images" in line
                   for line in report.summary())

    def test_explicit_tenant_overrides_spec(self, login, alice):
        fleet = RegistryFleet("site", n_shards=1, replicas=1)
        report = build_matrix(login, alice, family(), parallelism=2,
                              fleet=fleet, tenant="other", token="t")
        assert report.success and report.tenant == "other"
        assert report.cells[0].pushed_ref.startswith("other/")

    def test_worker_crash_requeues_and_converges(self, login, alice):
        plan = FaultPlan().add_worker_crash(0, 1e-9)
        report = build_matrix(login, alice, family(), parallelism=2,
                              fault_plan=plan)
        assert report.success
        assert report.worker_crashes == 1
        assert report.requeues >= 1
        assert any("worker crash" in line for line in report.summary())

    def test_matrix_counters_and_span(self, login, alice):
        tracer = attach_tracer(login.kernel)
        report = build_matrix(login, alice, family(), parallelism=2)
        assert report.success
        snap = tracer.metrics.snapshot()["matrix"]
        assert snap["cells"] == 4
        assert snap["unique_cell_builds"] == 4
        assert snap["stage_builds_total"] == 8
        assert snap["stage_builds_unique"] == 6
        assert snap["amplification_x100"] == 133
        assert "failed_cells" not in snap
        assert any(sp.name == "matrix fam" and sp.kind == "matrix"
                   for sp in tracer.roots)

    def test_report_as_dict_is_json_shaped(self, login, alice):
        import json
        report = build_matrix(login, alice, family(), parallelism=2)
        d = report.as_dict()
        json.dumps(d)
        assert d["success"] is True
        assert len(d["cells"]) == 4
        assert d["plan"]["unique_stage_builds"] == 6


class TestMatrixCli:
    @pytest.fixture
    def astra(self):
        return make_astra(make_world(), n_compute=2)

    def write_spec(self, astra, text=SPEC_TEXT,
                   path="/home/alice/family.spec"):
        sys = Syscalls(astra.login.login("alice"))
        sys.write_file(path, text.encode())
        return path

    def test_happy_path(self, astra):
        path = self.write_spec(astra)
        status, out = astra_matrix_cli(
            astra, ["--parallelism", "2", "-f", path, "alice"])
        assert status == 0, out
        assert "4 cells -> 4 unique images" in out
        assert "8 stage builds -> 6 unique" in out
        assert "amplification 1.33x" in out
        assert "ok: 4 cells built" in out

    def test_push_through_registry_fleet(self, astra):
        path = self.write_spec(astra)
        status, out = astra_matrix_cli(
            astra, ["--registry-shards", "2", "--replicas", "2",
                    "--token", "s3cret", "-f", path, "alice"])
        assert status == 0, out
        assert "pushed 4 images to 2 shard(s) as tenant 'hpc'" in out

    def test_usage_without_spec_or_user(self, astra):
        status, out = astra_matrix_cli(astra, [])
        assert status == 1 and out.startswith("usage:")

    def test_unknown_option(self, astra):
        status, out = astra_matrix_cli(astra, ["--bogus", "x", "alice"])
        assert status == 1 and "unknown option '--bogus'" in out

    def test_bad_parallelism(self, astra):
        status, out = astra_matrix_cli(
            astra, ["--parallelism", "0", "-f", "/x", "alice"])
        assert status == 1 and "bad --parallelism" in out

    def test_replicas_exceed_shards(self, astra):
        path = self.write_spec(astra)
        status, out = astra_matrix_cli(
            astra, ["--registry-shards", "1", "--replicas", "2",
                    "-f", path, "alice"])
        assert status == 1 and "exceeds --registry-shards" in out

    def test_unknown_user(self, astra):
        path = self.write_spec(astra)
        status, out = astra_matrix_cli(astra, ["-f", path, "mallory"])
        assert status == 1 and "no account 'mallory'" in out

    def test_unreadable_spec_file(self, astra):
        status, out = astra_matrix_cli(
            astra, ["-f", "/no/such.spec", "alice"])
        assert status == 1 and "can't read /no/such.spec" in out

    def test_degenerate_spec_is_a_cli_error(self, astra):
        path = self.write_spec(astra, text=(
            "name: solo\ntag: solo:${a}\naxis a: one\n"
            "template: |\n  FROM centos:7\n  RUN echo ${a}\n"))
        status, out = astra_matrix_cli(astra, ["-f", path, "alice"])
        assert status == 1
        assert "astra-matrix:" in out and "single cell" in out

    def test_bad_fault_plan(self, astra):
        path = self.write_spec(astra)
        status, out = astra_matrix_cli(
            astra, ["--fault-plan", "gremlins=yes", "-f", path, "alice"])
        assert status == 1 and "astra-matrix:" in out

    def test_fault_plan_crash_still_converges(self, astra):
        path = self.write_spec(astra)
        status, out = astra_matrix_cli(
            astra, ["--parallelism", "2",
                    "--fault-plan", "seed=3,worker-crash=0@0.000000001",
                    "-f", path, "alice"])
        assert status == 0, out
        assert "1 worker crash" in out

    def test_failing_cell_sets_exit_status(self, astra):
        path = self.write_spec(astra, text=SPEC_TEXT.replace(
            "debian:buster", "nope-such-image:1"))
        status, out = astra_matrix_cli(astra, ["-f", path, "alice"])
        assert status == 1 and "FAILED" in out
