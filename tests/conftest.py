"""Shared fixtures for integration-level tests."""

import pathlib

import pytest

from repro.cluster import make_machine, make_world

#: directory holding the golden trace transcripts (see
#: tests/test_golden_transcripts.py and docs/OBSERVABILITY.md)
GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/*.json from the current trace "
             "digests instead of comparing against them")

#: the paper's Figure 2 Dockerfile
FIG2_DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""

#: the paper's Figure 3 Dockerfile
FIG3_DOCKERFILE = """\
FROM debian:buster
RUN echo hello
RUN apt-get update
RUN apt-get install -y openssh-client
"""

#: the paper's Figure 8 Dockerfile (manual fakeroot, CentOS)
FIG8_DOCKERFILE = """\
FROM centos:7
RUN yum install -y epel-release
RUN yum install -y fakeroot
RUN echo hello
RUN fakeroot yum install -y openssh
"""

#: the paper's Figure 9 Dockerfile (manual workarounds, Debian)
FIG9_DOCKERFILE = """\
FROM debian:buster
RUN echo 'APT::Sandbox::User "root";' > /etc/apt/apt.conf.d/no-sandbox
RUN echo hello
RUN apt-get update
RUN apt-get install -y pseudo
RUN fakeroot apt-get install -y openssh-client
"""


@pytest.fixture
def world():
    return make_world(arches=("x86_64",))


@pytest.fixture
def world_multiarch():
    return make_world()


@pytest.fixture
def login(world):
    return make_machine("login1", network=world.network)


@pytest.fixture
def alice(login):
    return login.login("alice")


@pytest.fixture
def golden_check(request):
    """Compare a trace digest against its stored golden transcript.

    ``pytest --update-golden`` rewrites the stored file instead; the diff
    then shows up in review like any other behaviour change.
    """
    from repro.obs.export import dump_golden

    def check(name: str, digest: dict) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        text = dump_golden(digest)
        if request.config.getoption("--update-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(text)
        assert path.exists(), \
            f"no golden transcript {path.name}; run pytest --update-golden"
        expected = path.read_text()
        assert text == expected, (
            f"trace digest diverged from tests/golden/{path.name}; if the "
            f"change is intentional, rerun with --update-golden and review "
            f"the diff")

    return check
