"""Shared fixtures for integration-level tests."""

import pytest

from repro.cluster import make_machine, make_world

#: the paper's Figure 2 Dockerfile
FIG2_DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""

#: the paper's Figure 3 Dockerfile
FIG3_DOCKERFILE = """\
FROM debian:buster
RUN echo hello
RUN apt-get update
RUN apt-get install -y openssh-client
"""

#: the paper's Figure 8 Dockerfile (manual fakeroot, CentOS)
FIG8_DOCKERFILE = """\
FROM centos:7
RUN yum install -y epel-release
RUN yum install -y fakeroot
RUN echo hello
RUN fakeroot yum install -y openssh
"""

#: the paper's Figure 9 Dockerfile (manual workarounds, Debian)
FIG9_DOCKERFILE = """\
FROM debian:buster
RUN echo 'APT::Sandbox::User "root";' > /etc/apt/apt.conf.d/no-sandbox
RUN echo hello
RUN apt-get update
RUN apt-get install -y pseudo
RUN fakeroot apt-get install -y openssh-client
"""


@pytest.fixture
def world():
    return make_world(arches=("x86_64",))


@pytest.fixture
def world_multiarch():
    return make_world()


@pytest.fixture
def login(world):
    return make_machine("login1", network=world.network)


@pytest.fixture
def alice(login):
    return login.login("alice")
