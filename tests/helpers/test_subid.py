"""Tests for /etc/subuid parsing and allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.helpers import SUB_ID_MIN, SubidEntry, SubidError, SubidFile


class TestSubidEntry:
    def test_range(self):
        e = SubidEntry("alice", 200000, 65536)
        assert e.end == 265535
        assert e.contains_range(200000, 65536)
        assert e.contains_range(200024, 1)
        assert not e.contains_range(199999, 1)
        assert not e.contains_range(265535, 2)

    def test_overlap(self):
        a = SubidEntry("alice", 100000, 65536)
        b = SubidEntry("bob", 165536, 65536)
        assert not a.overlaps(b)
        c = SubidEntry("carol", 165535, 10)
        assert a.overlaps(c)

    def test_bad_count(self):
        with pytest.raises(SubidError):
            SubidEntry("x", 0, 0)

    def test_format(self):
        assert SubidEntry("alice", 200000, 65536).format() == "alice:200000:65536"


class TestSubidFile:
    FIG4 = "alice:200000:65536\nbob:265536:65536\n"

    def test_parse_figure4(self):
        """The Figure 4 example file."""
        f = SubidFile.parse(self.FIG4)
        assert len(f) == 2
        alice = f.entries_for("alice")
        assert alice[0].start == 200000 and alice[0].count == 65536

    def test_parse_comments_and_blanks(self):
        f = SubidFile.parse("# header\n\nalice:1000:10\n")
        assert len(f) == 1

    def test_parse_garbage(self):
        with pytest.raises(SubidError):
            SubidFile.parse("alice:1000\n")
        with pytest.raises(SubidError):
            SubidFile.parse("alice:x:y\n")

    def test_numeric_owner_matching(self):
        f = SubidFile.parse("1000:200000:65536\n")
        assert f.entries_for("alice", 1000)
        assert not f.entries_for("alice", 1001)

    def test_authorizes(self):
        f = SubidFile.parse(self.FIG4)
        assert f.authorizes("alice", 1000, 200000, 65536)
        assert f.authorizes("alice", 1000, 200100, 50)
        assert not f.authorizes("alice", 1000, 265536, 1)  # bob's range
        assert not f.authorizes("bob", 1001, 200000, 1)

    def test_format_roundtrip(self):
        f = SubidFile.parse(self.FIG4)
        assert SubidFile.parse(f.format()).format() == f.format()

    def test_add_rejects_overlap(self):
        f = SubidFile.parse(self.FIG4)
        with pytest.raises(SubidError):
            f.add(SubidEntry("carol", 200005, 10))

    def test_allocate_first_fit(self):
        f = SubidFile()
        a = f.allocate("alice")
        b = f.allocate("bob")
        assert a.start == SUB_ID_MIN
        assert b.start == SUB_ID_MIN + 65536
        assert not a.overlaps(b)

    def test_allocate_fills_gap(self):
        f = SubidFile([SubidEntry("x", SUB_ID_MIN + 65536, 65536)])
        a = f.allocate("alice")
        assert a.start == SUB_ID_MIN


@given(st.lists(st.integers(0, 50), min_size=1, max_size=8))
def test_allocations_never_overlap(sizes):
    """Property: successive automatic allocations are pairwise disjoint."""
    f = SubidFile()
    entries = [f.allocate(f"u{i}", 1 + s) for i, s in enumerate(sizes)]
    for i, a in enumerate(entries):
        for b in entries[i + 1:]:
            assert not a.overlaps(b)
