"""Tests for the privileged helpers: authorization, Figure 1/4 maps, and
the CVE-2018-7169 setgroups check."""

import pytest

from repro.errors import Errno, KernelError
from repro.helpers import HelperError, ShadowUtils
from repro.kernel import (
    Credentials,
    FileType,
    IdMapEntry,
    Kernel,
    Syscalls,
    make_ext4,
    may_access,
)


@pytest.fixture
def kernel():
    k = Kernel(make_ext4(), hostname="login1")
    Syscalls(k.init_process).mkdir_p("/etc")
    return k


@pytest.fixture
def shadow(kernel):
    s = ShadowUtils(kernel, users={"alice": 1000, "bob": 1001})
    s.usermod_add_subuids("alice", 200000, 65536)
    s.usermod_add_subgids("alice", 200000, 65536)
    s.usermod_add_subuids("bob", 265536, 65536)
    s.usermod_add_subgids("bob", 265536, 65536)
    return s


@pytest.fixture
def alice(kernel):
    return kernel.login(1000, 1000, user="alice")


class TestAuthorization:
    def test_figure1_map_installs(self, shadow, alice):
        """Figure 1: alice -> container 0, 200000..200064 -> 1..65."""
        sys = Syscalls(alice)
        sys.unshare_user()
        shadow.newuidmap(alice, alice, [
            IdMapEntry(0, 1000, 1),
            IdMapEntry(1, 200000, 65536),
        ])
        ns = alice.cred.userns
        assert ns.uid_to_host(0) == 1000
        assert ns.uid_to_host(65) == 200064

    def test_foreign_range_rejected(self, shadow, alice):
        """§2.1.2's warning: if alice could map bob's subordinate range she
        would own bob's files; the helper must refuse."""
        Syscalls(alice).unshare_user()
        with pytest.raises(HelperError) as exc:
            shadow.newuidmap(alice, alice, [
                IdMapEntry(0, 1000, 1),
                IdMapEntry(1, 265536, 10),  # bob's range
            ])
        assert exc.value.errno == Errno.EPERM

    def test_arbitrary_host_uid_rejected(self, shadow, alice):
        """Mapping host UID 1001 (bob himself) is never authorized."""
        Syscalls(alice).unshare_user()
        with pytest.raises(HelperError):
            shadow.newuidmap(alice, alice, [IdMapEntry(65537, 1001, 1)])

    def test_own_uid_always_allowed(self, shadow, alice):
        Syscalls(alice).unshare_user()
        shadow.newuidmap(alice, alice, [IdMapEntry(0, 1000, 1)])
        assert alice.cred.userns.uid_to_host(0) == 1000

    def test_no_grants_no_rootless_setup(self, kernel):
        s = ShadowUtils(kernel, users={"carol": 1002})
        carol = kernel.login(1002, 1002, user="carol")
        with pytest.raises(HelperError):
            s.setup_rootless_userns(carol)

    def test_empty_request_einval(self, shadow, alice):
        Syscalls(alice).unshare_user()
        with pytest.raises(HelperError) as exc:
            shadow.newuidmap(alice, alice, [])
        assert exc.value.errno == Errno.EINVAL


class TestUseradd:
    def test_useradd_allocates_disjoint_ranges(self, kernel):
        s = ShadowUtils(kernel, users={})
        a = s.useradd("alice", 1000)
        b = s.useradd("bob", 1001)
        assert a[0] != b[0]
        assert s.subuid().authorizes("alice", 1000, a[0], 65536)
        assert s.subgid().authorizes("bob", 1001, b[1], 65536)

    def test_config_persisted_in_etc(self, kernel):
        s = ShadowUtils(kernel, users={})
        s.useradd("alice", 1000)
        raw = Syscalls(kernel.init_process).read_file("/etc/subuid").decode()
        assert raw.startswith("alice:")

    def test_rootless_setup_after_useradd(self, kernel):
        s = ShadowUtils(kernel, users={})
        start, _ = s.useradd("alice", 1000)
        alice = kernel.login(1000, 1000, user="alice")
        s.setup_rootless_userns(alice)
        sys = Syscalls(alice)
        assert sys.geteuid() == 0
        assert alice.cred.userns.uid_to_host(1) == start


class TestCve2018_7169:
    """newgidmap's setgroups check (paper §2.1.4)."""

    def _manager_world(self, kernel):
        """A 'managers'-group-denied file: rwx---r-x root:2000."""
        sys0 = Syscalls(kernel.init_process)
        sys0.mkdir_p("/bin")
        sys0.write_file("/bin/reboot", b"#!/bin/sh\n")
        sys0.chown("/bin/reboot", 0, 2000)
        sys0.chmod("/bin/reboot", 0o705)

    def test_fixed_helper_requires_setgroups_deny(self, kernel):
        s = ShadowUtils(kernel, users={"mallory": 1003})
        mallory = kernel.login(1003, 1003, frozenset({2000}), user="mallory")
        Syscalls(mallory).unshare_user()
        with pytest.raises(HelperError) as exc:
            # self-only gid map with setgroups still "allow"
            s.newgidmap(mallory, mallory, [IdMapEntry(0, 1003, 1)])
        assert "setgroups" in str(exc.value)

    def test_vulnerable_helper_enables_group_drop_attack(self, kernel):
        """With the pre-fix helper, a manager can drop the 'managers' group
        via setgroups and flip a group-deny into an 'other' allow."""
        self._manager_world(kernel)
        s = ShadowUtils(kernel, users={"mallory": 1003},
                        fixed_cve_2018_7169=False)
        mallory = kernel.login(1003, 1003, frozenset({2000}), user="mallory")
        sys = Syscalls(mallory)

        # Before: group match denies execute.
        res = mallory.mnt_ns.resolve("/bin/reboot", mallory.cred)
        assert not may_access(mallory.cred, res.inode, execute=True)

        sys.unshare_user()
        s.newuidmap(mallory, mallory, [IdMapEntry(0, 1003, 1)])
        s.newgidmap(mallory, mallory, [IdMapEntry(0, 1003, 1)])  # no deny!
        assert mallory.cred.userns.setgroups == "allow"
        sys.setgroups([])  # drop 'managers' — permitted: ns root + allow

        res = mallory.mnt_ns.resolve("/bin/reboot", mallory.cred)
        assert may_access(mallory.cred, res.inode, execute=True)  # the attack

    def test_fixed_helper_blocks_attack_end_to_end(self, kernel):
        self._manager_world(kernel)
        s = ShadowUtils(kernel, users={"mallory": 1003})
        mallory = kernel.login(1003, 1003, frozenset({2000}), user="mallory")
        sys = Syscalls(mallory)
        sys.unshare_user()
        s.newuidmap(mallory, mallory, [IdMapEntry(0, 1003, 1)])
        with pytest.raises(HelperError):
            s.newgidmap(mallory, mallory, [IdMapEntry(0, 1003, 1)])
        # The correct sequence (deny first) leaves setgroups unusable:
        sys.deny_setgroups()
        s.newgidmap(mallory, mallory, [IdMapEntry(0, 1003, 1)])
        with pytest.raises(KernelError) as exc:
            sys.setgroups([])
        assert exc.value.errno == Errno.EPERM

    def test_subgid_authorized_map_keeps_setgroups_allow(self, kernel, shadow):
        """Admin-authorized multi-range maps legitimately keep setgroups
        (Type II builds need it for package managers)."""
        alice = kernel.login(1000, 1000, user="alice")
        shadow.setup_rootless_userns(alice)
        Syscalls(alice).setgroups([0, 5])  # works
