"""A small 'distribution' tree with the coreutils installed, for shell tests."""

import pytest

from repro.kernel import Kernel, Syscalls, make_ext4
from repro.shell import ExecContext
from repro.shell.install import install_binary, install_script

_CORE = {
    "echo": "coreutils.echo", "cat": "coreutils.cat", "touch": "coreutils.touch",
    "ls": "coreutils.ls", "chown": "coreutils.chown", "chgrp": "coreutils.chgrp",
    "chmod": "coreutils.chmod", "mknod": "coreutils.mknod", "rm": "coreutils.rm",
    "mkdir": "coreutils.mkdir", "mv": "coreutils.mv", "cp": "coreutils.cp",
    "ln": "coreutils.ln", "id": "coreutils.id", "whoami": "coreutils.whoami",
    "uname": "coreutils.uname", "hostname": "coreutils.hostname",
    "env": "coreutils.env", "stat": "coreutils.stat",
    "grep": "grep.grep", "egrep": "grep.egrep", "fgrep": "grep.fgrep",
    "tar": "tar.tar", "sh": "sh.posix",
    "useradd": "shadow.useradd", "groupadd": "shadow.groupadd",
}


def populate_userland(sys: Syscalls) -> None:
    """Install coreutils into /usr/bin plus /etc files and /dev/null."""
    for name, impl in _CORE.items():
        install_binary(sys, f"/usr/bin/{name}", impl)
    sys.mkdir_p("/bin")
    if not sys.exists("/bin/sh"):
        sys.symlink("/usr/bin/sh", "/bin/sh")
    sys.mkdir_p("/etc")
    sys.write_file("/etc/passwd", b"root:x:0:0:root:/root:/bin/sh\n"
                                  b"nobody:x:65534:65534::/:/sbin/nologin\n")
    sys.write_file("/etc/group", b"root:x:0:\nnogroup:x:65534:\n")
    sys.mkdir_p("/tmp")
    sys.chmod("/tmp", 0o1777)


@pytest.fixture
def kernel():
    k = Kernel(make_ext4(), hostname="shellhost")
    sys0 = Syscalls(k.init_process)
    populate_userland(sys0)
    from repro.kernel import FileType
    sys0.mkdir_p("/dev")
    sys0.mknod("/dev/null", FileType.CHR, 0o666, rdev=(1, 3))
    sys0.mkdir_p("/home/alice")
    sys0.chown("/home/alice", 1000, 1000)
    return k


@pytest.fixture
def root_ctx(kernel):
    proc = kernel.init_process.fork(comm="sh")
    return ExecContext(proc, Syscalls(proc),
                       env={"PATH": "/usr/bin:/bin", "HOME": "/root"})


@pytest.fixture
def alice_ctx(kernel):
    proc = kernel.login(1000, 1000, user="alice", home="/home/alice")
    return ExecContext(proc, Syscalls(proc),
                       env={"PATH": "/usr/bin:/bin", "HOME": "/home/alice"})
