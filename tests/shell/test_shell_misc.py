"""Additional shell behaviours: builtins, expansions, error paths."""

import pytest

from repro.shell import OutputSink, render_argv, run_shell
from repro.shell.expand import expand_string


def sh(ctx, script):
    child = ctx.child(stdout=OutputSink(), stderr=OutputSink())
    status = run_shell(child, script)
    return status, child.stdout.text(), child.stderr.text()


class TestBuiltinsMisc:
    def test_pwd(self, root_ctx):
        root_ctx.sys.chdir("/etc")
        _, out, _ = sh(root_ctx, "pwd")
        assert out == "/etc\n"

    def test_cd_home_default(self, root_ctx):
        root_ctx.sys.mkdir_p("/root")
        st, _, _ = sh(root_ctx, "cd")
        assert st == 0
        assert root_ctx.sys.getcwd() == "/root"

    def test_cd_missing_dir(self, root_ctx):
        st, _, err = sh(root_ctx, "cd /nonexistent")
        assert st == 1 and "cd:" in err

    def test_export_and_unset(self, root_ctx):
        st, out, _ = sh(root_ctx,
                        "export FOO=1; echo $FOO; unset FOO; echo [$FOO]")
        assert out == "1\n[]\n"

    def test_umask_builtin(self, root_ctx):
        _, out, _ = sh(root_ctx, "umask")
        assert out.strip() == "0022"
        st, _, _ = sh(root_ctx, "umask 077")
        assert st == 0

    def test_exit_without_status_uses_last(self, root_ctx):
        st, _, _ = sh(root_ctx, "false; exit")
        assert st == 1

    def test_colon_noop(self, root_ctx):
        st, _, _ = sh(root_ctx, ": ignored args")
        assert st == 0

    def test_test_builtin_operators(self, root_ctx):
        for expr, expected in [
            ("-n x", 0), ("-z ''", 0), ("-z x", 1),
            ("5 -eq 5", 0), ("5 -ne 4", 0), ("2 -le 1", 1),
            ("abc != abd", 0),
        ]:
            st, _, _ = sh(root_ctx, f"test {expr}")
            assert st == expected, expr

    def test_test_file_operators(self, root_ctx):
        root_ctx.sys.write_file("/tmp/f", b"content")
        root_ctx.sys.mkdir_p("/tmp/d")
        assert sh(root_ctx, "test -f /tmp/f")[0] == 0
        assert sh(root_ctx, "test -d /tmp/d")[0] == 0
        assert sh(root_ctx, "test -d /tmp/f")[0] == 1
        assert sh(root_ctx, "test -s /tmp/f")[0] == 0
        assert sh(root_ctx, "test -e /tmp/missing")[0] == 1

    def test_bracket_missing_close(self, root_ctx):
        st, _, err = sh(root_ctx, "[ x = x")
        assert st == 2 and "missing ]" in err


class TestErrorPaths:
    def test_syntax_error_status_2(self, root_ctx):
        st, _, err = sh(root_ctx, "if true; then echo x")
        assert st == 2 and "syntax error" in err

    def test_redirect_missing_input(self, root_ctx):
        st, _, err = sh(root_ctx, "cat < /nope")
        assert st == 1 and "No such file" in err

    def test_exec_permission_126(self, root_ctx):
        root_ctx.sys.write_file("/tmp/noexec", b"#!/bin/sh\necho hi\n")
        st, _, _ = sh(root_ctx, "/tmp/noexec")
        assert st == 126

    def test_background_jobs_rejected(self, root_ctx):
        st, _, err = sh(root_ctx, "sleep 1 &")
        assert st == 2


class TestExpansion:
    def test_expand_string_forms(self):
        env = {"A": "1", "LONG_name2": "x"}
        assert expand_string("$A", env) == "1"
        assert expand_string("${A}", env) == "1"
        assert expand_string("$LONG_name2!", env) == "x!"
        assert expand_string("$MISSING", env) == ""
        assert expand_string("no vars", env) == "no vars"

    def test_positional_params(self, root_ctx):
        from repro.shell.install import install_script
        install_script(root_ctx.sys, "/usr/bin/args.sh",
                       'echo "$0 got $1 and $2 (count $#)"\n')
        st, out, _ = sh(root_ctx, "args.sh one two")
        assert st == 0
        assert "got one and two (count 2)" in out

    def test_render_argv_quoting(self):
        assert render_argv(["echo", "plain"]) == "echo plain"
        assert render_argv(["echo", "two words"]) == "echo 'two words'"
        assert render_argv(["grep", "[epel]"]) == "grep '[epel]'"
        assert render_argv(["x", ""]) == "x ''"


class TestNestedControl:
    def test_nested_if(self, root_ctx):
        _, out, _ = sh(root_ctx,
                       "if true; then if false; then echo a; "
                       "else echo b; fi; fi")
        assert out == "b\n"

    def test_if_with_pipeline_condition(self, root_ctx):
        root_ctx.sys.write_file("/etc/test.conf", b"enabled=1\n")
        _, out, _ = sh(root_ctx,
                       "if cat /etc/test.conf | grep -q enabled; "
                       "then echo on; fi")
        assert out == "on\n"

    def test_andor_chain_with_if(self, root_ctx):
        _, out, _ = sh(root_ctx,
                       "test -e /etc/passwd && echo have || echo missing")
        assert out == "have\n"
