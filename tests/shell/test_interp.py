"""Interpreter + userland integration tests."""

import pytest

from repro.kernel import FileType, Syscalls
from repro.shell import ExecContext, OutputSink, run_shell
from repro.shell.install import install_binary, install_script


def sh(ctx, script):
    """Run script with fresh output sinks; return (status, stdout, stderr)."""
    child = ctx.child(stdout=OutputSink(), stderr=OutputSink())
    status = run_shell(child, script)
    return status, child.stdout.text(), child.stderr.text()


class TestBasics:
    def test_echo_builtin(self, root_ctx):
        st, out, _ = sh(root_ctx, "echo hello world")
        assert st == 0 and out == "hello world\n"

    def test_echo_n(self, root_ctx):
        _, out, _ = sh(root_ctx, "echo -n hi")
        assert out == "hi"

    def test_exit_status_chain(self, root_ctx):
        st, out, _ = sh(root_ctx, "false && echo yes")
        assert st == 1 and out == ""
        st, out, _ = sh(root_ctx, "false || echo no")
        assert st == 0 and out == "no\n"

    def test_semicolon_list(self, root_ctx):
        _, out, _ = sh(root_ctx, "echo a; echo b")
        assert out == "a\nb\n"

    def test_negation(self, root_ctx):
        st, _, _ = sh(root_ctx, "! false")
        assert st == 0
        st, _, _ = sh(root_ctx, "! true")
        assert st == 1

    def test_command_not_found_127(self, root_ctx):
        st, _, err = sh(root_ctx, "no-such-cmd")
        assert st == 127
        assert "command not found" in err

    def test_variables(self, root_ctx):
        _, out, _ = sh(root_ctx, "FOO=bar; echo $FOO ${FOO}baz")
        assert out == "bar barbaz\n"

    def test_single_quotes_no_expansion(self, root_ctx):
        _, out, _ = sh(root_ctx, "FOO=x; echo '$FOO'")
        assert out == "$FOO\n"

    def test_double_quotes_expand(self, root_ctx):
        _, out, _ = sh(root_ctx, 'FOO=x; echo "v=$FOO"')
        assert out == "v=x\n"

    def test_exit_builtin(self, root_ctx):
        st, _, _ = sh(root_ctx, "exit 3; echo unreachable")
        assert st == 3

    def test_temp_assignment_visible_to_command(self, root_ctx):
        st, out, _ = sh(root_ctx, "GREETING=hi env | grep GREETING")
        assert st == 0 and "GREETING=hi" in out

    def test_question_mark_var(self, root_ctx):
        _, out, _ = sh(root_ctx, "false; echo $?; true; echo $?")
        assert out == "1\n0\n"


class TestSetFlags:
    def test_set_e_aborts(self, root_ctx):
        st, out, _ = sh(root_ctx, "set -e; false; echo survived")
        assert st == 1 and out == ""

    def test_set_e_spares_conditions(self, root_ctx):
        st, out, _ = sh(root_ctx,
                        "set -e; if false; then echo a; fi; echo ok")
        assert st == 0 and out == "ok\n"

    def test_set_e_spares_andor_left(self, root_ctx):
        st, out, _ = sh(root_ctx, "set -e; false || echo rescued")
        assert st == 0 and out == "rescued\n"

    def test_set_x_traces(self, root_ctx):
        _, _, err = sh(root_ctx, "set -x; echo hello")
        assert "+ echo hello" in err

    def test_set_ex_combo(self, root_ctx):
        st, _, err = sh(root_ctx, "set -ex; echo one; false; echo two")
        assert st == 1
        assert "+ echo one" in err and "+ echo two" not in err


class TestControlFlow:
    def test_if_else(self, root_ctx):
        _, out, _ = sh(root_ctx,
                       "if test -e /etc/passwd; then echo yes; else echo no; fi")
        assert out == "yes\n"
        _, out, _ = sh(root_ctx,
                       "if test -e /nope; then echo yes; else echo no; fi")
        assert out == "no\n"

    def test_if_negated_condition(self, root_ctx):
        _, out, _ = sh(root_ctx,
                       "if ! test -e /nope; then echo absent; fi")
        assert out == "absent\n"

    def test_elif(self, root_ctx):
        _, out, _ = sh(root_ctx,
                       "if false; then echo a; elif true; then echo b; "
                       "else echo c; fi")
        assert out == "b\n"

    def test_bracket_test(self, root_ctx):
        st, _, _ = sh(root_ctx, "[ hello = hello ]")
        assert st == 0
        st, _, _ = sh(root_ctx, "[ 3 -gt 5 ]")
        assert st == 1


class TestPipesAndRedirects:
    def test_pipeline(self, root_ctx):
        _, out, _ = sh(root_ctx, "cat /etc/passwd | grep -F root")
        assert "root:x:0:0" in out

    def test_pipeline_status_is_last(self, root_ctx):
        st, _, _ = sh(root_ctx, "false | true")
        assert st == 0

    def test_redirect_out(self, root_ctx):
        st, _, _ = sh(root_ctx, "echo data > /tmp/out.txt")
        assert st == 0
        assert root_ctx.sys.read_file("/tmp/out.txt") == b"data\n"

    def test_redirect_append(self, root_ctx):
        sh(root_ctx, "echo one > /tmp/log; echo two >> /tmp/log")
        assert root_ctx.sys.read_file("/tmp/log") == b"one\ntwo\n"

    def test_redirect_devnull(self, root_ctx):
        st, out, _ = sh(root_ctx, "echo discarded > /dev/null")
        assert st == 0 and out == ""

    def test_redirect_stdin(self, root_ctx):
        root_ctx.sys.write_file("/tmp/in.txt", b"needle\n")
        st, out, _ = sh(root_ctx, "grep -F needle < /tmp/in.txt")
        assert st == 0 and "needle" in out

    def test_redirect_stderr(self, root_ctx):
        sh(root_ctx, "ls /enoent 2> /tmp/err.txt")
        assert b"cannot access" in root_ctx.sys.read_file("/tmp/err.txt")

    def test_merge_2to1(self, root_ctx):
        _, out, _ = sh(root_ctx, "ls /enoent 2>&1")
        assert "cannot access" in out


class TestGlobbing:
    def test_star(self, root_ctx):
        root_ctx.sys.mkdir_p("/etc/yum.repos.d")
        root_ctx.sys.write_file("/etc/yum.repos.d/base.repo", b"[base]\n")
        root_ctx.sys.write_file("/etc/yum.repos.d/extra.repo", b"[extra]\n")
        _, out, _ = sh(root_ctx, "echo /etc/yum.repos.d/*")
        assert out == "/etc/yum.repos.d/base.repo /etc/yum.repos.d/extra.repo\n"

    def test_no_match_stays_literal(self, root_ctx):
        _, out, _ = sh(root_ctx, "echo /nope/*")
        assert out == "/nope/*\n"

    def test_quoted_glob_is_literal(self, root_ctx):
        _, out, _ = sh(root_ctx, "echo '/etc/*'")
        assert out == "/etc/*\n"

    def test_grep_over_glob(self, root_ctx):
        """The rhel7 --force check: grep -Eq '\\[epel\\]' over globbed files."""
        root_ctx.sys.write_file("/etc/yum.conf", b"[main]\n")
        root_ctx.sys.mkdir_p("/etc/yum.repos.d")
        root_ctx.sys.write_file("/etc/yum.repos.d/base.repo", b"[base]\n")
        st, _, _ = sh(root_ctx,
                      "grep -Eq '\\[epel\\]' /etc/yum.conf /etc/yum.repos.d/*")
        assert st == 1
        root_ctx.sys.write_file("/etc/yum.repos.d/epel.repo", b"[epel]\n")
        st, _, _ = sh(root_ctx,
                      "grep -Eq '\\[epel\\]' /etc/yum.conf /etc/yum.repos.d/*")
        assert st == 0


class TestCommandBuiltin:
    def test_command_v_found(self, root_ctx):
        st, out, _ = sh(root_ctx, "command -v grep")
        assert st == 0 and out.strip() == "/usr/bin/grep"

    def test_command_v_missing(self, root_ctx):
        st, out, _ = sh(root_ctx, "command -v fakeroot > /dev/null")
        assert st == 1 and out == ""

    def test_command_v_builtin(self, root_ctx):
        st, out, _ = sh(root_ctx, "command -v cd")
        assert st == 0 and out.strip() == "cd"


class TestUserland:
    def test_ls_l_format(self, root_ctx):
        sh(root_ctx, "echo x > /tmp/file.txt; chmod 644 /tmp/file.txt")
        _, out, _ = sh(root_ctx, "ls -lh /tmp/file.txt")
        assert out.startswith("-rw-r--r-- 1 root root")

    def test_chown_by_name(self, root_ctx):
        sh(root_ctx, "touch /tmp/f")
        st, _, _ = sh(root_ctx, "chown nobody /tmp/f")
        assert st == 0
        assert root_ctx.sys.stat("/tmp/f").kuid == 65534

    def test_chown_unknown_user(self, root_ctx):
        sh(root_ctx, "touch /tmp/f")
        st, _, err = sh(root_ctx, "chown wizard /tmp/f")
        assert st == 1 and "invalid user" in err

    def test_mkdir_p_and_rm_r(self, root_ctx):
        sh(root_ctx, "mkdir -p /tmp/a/b/c; touch /tmp/a/b/c/f")
        st, _, _ = sh(root_ctx, "rm -rf /tmp/a")
        assert st == 0 and not root_ctx.sys.exists("/tmp/a")

    def test_id_and_whoami(self, root_ctx):
        _, out, _ = sh(root_ctx, "whoami")
        assert out == "root\n"
        _, out, _ = sh(root_ctx, "id -u")
        assert out == "0\n"

    def test_uname(self, root_ctx):
        _, out, _ = sh(root_ctx, "uname -m")
        assert out == "x86_64\n"

    def test_script_execution(self, root_ctx):
        install_script(root_ctx.sys, "/usr/bin/hello.sh",
                       "echo hello from script\n")
        st, out, _ = sh(root_ctx, "hello.sh")
        assert st == 0 and out == "hello from script\n"

    def test_useradd_groupadd(self, root_ctx):
        st, _, _ = sh(root_ctx, "groupadd -r ssh_keys && useradd -r sshd")
        assert st == 0
        from repro.userdb import UserDb
        db = UserDb.load(root_ctx.sys)
        assert db.group_by_name("ssh_keys") is not None
        assert db.user_by_name("sshd") is not None

    def test_tar_roundtrip(self, root_ctx):
        sh(root_ctx, "mkdir -p /tmp/src/sub; echo v > /tmp/src/sub/f")
        st, _, err = sh(root_ctx, "tar -cf /tmp/a.tar /tmp/src && "
                                  "mkdir /tmp/dst && "
                                  "tar -xf /tmp/a.tar -C /tmp/dst")
        assert st == 0, err
        assert root_ctx.sys.read_file("/tmp/dst/sub/f") == b"v\n"

    def test_unprivileged_user_cannot_chown(self, alice_ctx):
        sh(alice_ctx, "touch /home/alice/f")
        st, _, err = sh(alice_ctx, "chown nobody /home/alice/f")
        assert st == 1 and "Operation not permitted" in err

    def test_alice_identity(self, alice_ctx):
        _, out, _ = sh(alice_ctx, "id -u")
        assert out == "1000\n"


class TestArchMismatch:
    def test_foreign_binary_exec_format_error(self, root_ctx):
        install_binary(root_ctx.sys, "/usr/bin/armapp", "coreutils.echo",
                       arch="aarch64")
        st, _, err = sh(root_ctx, "armapp hi")
        assert st == 126
        assert "Exec format error" in err
