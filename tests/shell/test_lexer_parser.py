"""Lexer and parser tests, including the exact command lines from the
paper's ch-image --force init steps."""

import pytest
from hypothesis import given, strategies as st

from repro.shell import ShellSyntaxError, parse, tokenize
from repro.shell.ast import IfClause, Pipeline, SimpleCommand


def words_of(cmd):
    return [w.raw() for w in cmd.words]


class TestLexer:
    def test_simple(self):
        toks = tokenize("echo hello world")
        assert [t.word.raw() for t in toks] == ["echo", "hello", "world"]

    def test_single_quotes_block_expansion(self):
        toks = tokenize("echo '$HOME'")
        assert toks[1].word.segments[0].quote == "'"

    def test_double_quotes(self):
        toks = tokenize('echo "a b"')
        assert toks[1].word.raw() == "a b"
        assert toks[1].word.segments[0].quote == '"'

    def test_mixed_quoting_one_word(self):
        toks = tokenize("""echo a'b'"c"d""")
        assert toks[1].word.raw() == "abcd"
        assert len(toks[1].word.segments) == 4

    def test_backslash_escape(self):
        toks = tokenize(r"grep \[epel\]")
        assert toks[1].word.raw() == "[epel]"
        assert all(s.quote == "'" for s in toks[1].word.segments
                   if s.text in "[]")

    def test_operators(self):
        toks = tokenize("a && b || c ; d | e")
        ops = [t.value for t in toks if t.kind == "OP"]
        assert ops == ["&&", "||", ";", "|"]

    def test_redirections(self):
        toks = tokenize("cmd > out 2> err >> app 2>&1 < in")
        redirs = [t.value for t in toks if t.kind == "REDIR"]
        assert redirs == [">", "2>", ">>", "2>&1", "<"]

    def test_comments_stripped(self):
        toks = tokenize("echo hi # comment ; echo bye")
        assert len([t for t in toks if t.kind == "WORD"]) == 2

    def test_unterminated_quote(self):
        with pytest.raises(ShellSyntaxError):
            tokenize("echo 'oops")
        with pytest.raises(ShellSyntaxError):
            tokenize('echo "oops')

    def test_line_continuation(self):
        toks = tokenize("echo a \\\n b")
        assert len([t for t in toks if t.kind == "WORD"]) == 3
        assert not [t for t in toks if t.kind == "NEWLINE"]


class TestParser:
    def test_list_and_andor(self):
        ast = parse("a; b && c || d")
        assert len(ast.items) == 2
        assert ast.items[1].ops == ("&&", "||")

    def test_pipeline_negation(self):
        ast = parse("! fgrep -q _apt /etc/passwd")
        pipe = ast.items[0].items[0]
        assert pipe.negated

    def test_pipeline(self):
        ast = parse("apt-config dump | fgrep -q 'APT::Sandbox'")
        pipe = ast.items[0].items[0]
        assert len(pipe.commands) == 2

    def test_if_clause(self):
        ast = parse("if test -e /x; then echo yes; else echo no; fi")
        cmd = ast.items[0].items[0].commands[0]
        assert isinstance(cmd, IfClause)
        assert cmd.else_body is not None

    def test_elif(self):
        ast = parse("if a; then b; elif c; then d; else e; fi")
        cmd = ast.items[0].items[0].commands[0]
        assert len(cmd.conditions) == 2

    def test_assignments(self):
        ast = parse("FOO=bar BAZ=qux cmd arg")
        cmd = ast.items[0].items[0].commands[0]
        assert isinstance(cmd, SimpleCommand)
        assert [a[0] for a in cmd.assignments] == ["FOO", "BAZ"]
        assert words_of(cmd) == ["cmd", "arg"]

    def test_assignment_only(self):
        ast = parse("FOO=bar")
        cmd = ast.items[0].items[0].commands[0]
        assert cmd.assignments[0][0] == "FOO"
        assert not cmd.words

    def test_rhel7_init_line_parses(self):
        """The exact §5.3.1 rhel7 init step."""
        line = (
            "set -ex; if ! grep -Eq '\\[epel\\]' /etc/yum.conf "
            "/etc/yum.repos.d/*; then yum install -y epel-release; "
            "yum-config-manager --disable epel; fi; "
            "yum --enablerepo=epel install -y fakeroot"
        )
        ast = parse(line)
        assert len(ast.items) == 3
        if_cmd = ast.items[1].items[0].commands[0]
        assert isinstance(if_cmd, IfClause)
        assert if_cmd.conditions[0].items[0].items[0].negated

    def test_debderiv_check_line_parses(self):
        """The §5.3.2 debderiv check."""
        line = ("apt-config dump | fgrep -q 'APT::Sandbox::User \"root\"' "
                "|| ! fgrep -q _apt /etc/passwd")
        ast = parse(line)
        andor = ast.items[0]
        assert andor.ops == ("||",)
        assert andor.items[1].negated

    def test_redirect_parse(self):
        ast = parse("echo 'APT::Sandbox::User \"root\";' > "
                    "/etc/apt/apt.conf.d/no-sandbox")
        cmd = ast.items[0].items[0].commands[0]
        assert cmd.redirects[0].op == ">"
        assert cmd.redirects[0].target.raw() == "/etc/apt/apt.conf.d/no-sandbox"

    def test_empty_command_rejected(self):
        with pytest.raises(ShellSyntaxError):
            parse("&& foo")

    def test_unterminated_if(self):
        with pytest.raises(ShellSyntaxError):
            parse("if a; then b")


# -- property: tokenizing rendered plain words round-trips -----------------------

_plain = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="-_./=:"),
    min_size=1, max_size=12,
).filter(lambda s: "=" not in s or not s[0].isalpha())


@given(st.lists(_plain, min_size=1, max_size=6))
def test_tokenize_roundtrip_plain_words(words):
    toks = tokenize(" ".join(words))
    assert [t.word.raw() for t in toks if t.kind == "WORD"] == words
