"""Per-handle BuildCache stats and single-flight bookkeeping.

Regression for the shared-by-reference stats bug: a BuildCache shared by
several builders used to hand every one of them the *same* counters, so
concurrent builders double-counted each other's hits.  Handles give each
builder private counters; the cache aggregates them on report.
"""

from repro.archive import FileType, TarArchive, TarMember
from repro.cas import BuildCache, CacheHandle


def mini_diff() -> TarArchive:
    return TarArchive([TarMember(path="x", ftype=FileType.REG, mode=0o644,
                                 uid=0, gid=0, data=b"payload")])


class TestHandles:
    def test_handle_stats_are_private(self):
        cache = BuildCache()
        key = cache.begin("sha256:base")
        cache.store_diff(key, "RUN", "echo hi", mini_diff())
        h1, h2 = cache.handle(name="alice"), cache.handle(name="bob")
        assert h1.lookup(key) is not None
        assert h1.lookup(key) is not None
        assert h2.lookup("sha256:nope") is None
        assert h1.stats.hits == 2 and h1.stats.misses == 0
        assert h2.stats.hits == 0 and h2.stats.misses == 1
        # the cache's own counters did not absorb the handle traffic
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_aggregate_sums_cache_and_handles(self):
        cache = BuildCache()
        key = cache.begin("sha256:base")
        cache.store_diff(key, "RUN", "echo hi", mini_diff())  # cache: store
        h = cache.handle()
        h.lookup(key)                                         # handle: hit
        cache.lookup("sha256:nope")                           # cache: miss
        agg = cache.aggregate_stats()
        assert agg.hits == 1 and agg.misses == 1 and agg.stores == 1

    def test_handle_stores_count_on_the_handle(self):
        cache = BuildCache()
        h = cache.handle()
        key = cache.begin("sha256:base")
        h.store_diff(key, "RUN", "echo hi", mini_diff())
        assert h.stats.stores == 1
        assert cache.stats.stores == 0
        assert cache.aggregate_stats().stores == 1
        # the record itself lives in the shared cache
        assert cache.lookup(key) is not None

    def test_handle_delegates_everything_else(self):
        cache = BuildCache()
        h = cache.handle(name="farm")
        assert isinstance(h, CacheHandle)
        key = h.begin("sha256:base")       # delegated
        key2 = h.extend(key, "RUN", "x")   # delegated
        assert key != key2
        h.tag("img", key2)                 # delegated
        assert "img" in cache.tags

    def test_summary_reports_aggregate_and_handles(self):
        cache = BuildCache()
        key = cache.begin("sha256:base")
        cache.store_diff(key, "RUN", "echo hi", mini_diff())
        h = cache.handle(name="alice")
        h.lookup(key)
        text = cache.summary()
        assert "inflight hits:" in text
        assert "handles:       1" in text
        assert "hits/misses:   1/0" in text


class TestSingleFlight:
    def test_leader_then_waiters(self):
        cache = BuildCache()
        assert cache.flight_begin("k")          # leader
        assert not cache.flight_begin("k")      # follower: already flying
        assert cache.flight_in_progress("k")
        cache.flight_wait("k", "t1")
        cache.flight_wait("k", "t2")
        assert cache.flight_finish("k") == ["t1", "t2"]
        assert not cache.flight_in_progress("k")
        assert cache.flight_begin("k")          # new flight allowed

    def test_finish_without_flight_is_empty(self):
        cache = BuildCache()
        assert cache.flight_finish("ghost") == []

    def test_inflight_hits_routed_to_handle(self):
        cache = BuildCache()
        h = cache.handle(name="builder2")
        h.note_inflight_hit()
        assert h.stats.inflight_hits == 1
        assert cache.stats.inflight_hits == 0
        assert cache.aggregate_stats().inflight_hits == 1

    def test_inflight_hits_in_as_dict(self):
        cache = BuildCache()
        cache.note_inflight_hit()
        assert cache.stats.as_dict()["inflight_hits"] == 1
