"""Cold-build determinism: the property that makes cache sharing sound.

Two builders that have never exchanged state must derive identical cache
keys for identical builds — otherwise a registry cache export could never
hit anywhere else.  Each case builds the same figure Dockerfile in two
completely fresh worlds and compares keys and image content digests.

(The complementary property — cache-*disabled* builds stay byte-identical
— is pinned by ``tests/test_golden_transcripts.py`` against the stored
golden files, which this PR does not regenerate.)
"""

import pytest

from repro.cas import snapshot_digest, snapshot_tree
from repro.cluster import make_machine, make_world
from repro.core import ChImage

from ..conftest import FIG2_DOCKERFILE, FIG3_DOCKERFILE


def _cold_build(dockerfile: str, *, force: bool):
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    alice = login.login("alice")
    ch = ChImage(login, alice, cache=True)
    result = ch.build(tag="foo", dockerfile=dockerfile, force=force)
    assert result.success, result.text
    tree_digest = snapshot_digest(
        snapshot_tree(ch.sys, ch.storage.path_of("foo")))
    return ch, tree_digest


class TestColdBuildDeterminism:
    @pytest.mark.parametrize("dockerfile", [
        pytest.param(FIG2_DOCKERFILE, id="fig10-centos"),
        pytest.param(FIG3_DOCKERFILE, id="fig11-debian"),
    ])
    def test_two_cold_builds_agree(self, dockerfile):
        """Identical cache keys, tags, diff blobs, and image trees from
        two independent cold builds of the Fig. 10/11 Dockerfiles."""
        ch1, tree1 = _cold_build(dockerfile, force=True)
        ch2, tree2 = _cold_build(dockerfile, force=True)
        assert ch1.cache.keys() == ch2.cache.keys()
        assert ch1.cache.tags == ch2.cache.tags
        assert tree1 == tree2
        # the cached diffs are bit-identical too: same blob digests
        assert sorted(r.diff_digest
                      for r in ch1.cache.records.values()) == \
            sorted(r.diff_digest for r in ch2.cache.records.values())

    def test_force_partitions_key_space(self):
        ch1, _ = _cold_build(FIG2_DOCKERFILE, force=True)
        world = make_world(arches=("x86_64",))
        login = make_machine("login1", network=world.network)
        ch2 = ChImage(login, login.login("alice"), cache=True)
        ch2.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=False)
        assert not set(ch1.cache.keys()) & set(ch2.cache.keys())
