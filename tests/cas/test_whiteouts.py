"""Whiteout edge cases in the snapshot diff layer.

Deletions travel as character-device members with mode 0 (the overlayfs
convention).  These tests pin the awkward corners — a path deleted and
recreated as a different file type, a whole non-empty directory
disappearing, and the ordering contract (changed members first, in path
order, then whiteouts in path order) that keeps diff serializations —
and therefore cache blob digests — stable.
"""

import pytest

from repro.cas.diff import (
    apply_diff_to_snapshot,
    snapshot_and_diff,
    snapshot_digest,
)
from repro.kernel import FileType, Kernel, Syscalls, make_ext4
from repro.sim.opts import reference_engine

ROOT = "/img"


@pytest.fixture(params=["optimized", "reference"])
def mode(request):
    """Run every case through both the journal walker and the oracle."""
    if request.param == "reference":
        with reference_engine():
            yield request.param
    else:
        yield request.param


@pytest.fixture
def sys(mode):
    kernel = Kernel(make_ext4(), hostname="h")
    s = Syscalls(kernel.init_process)
    s.mkdir(ROOT, 0o755)
    s.mkdir(f"{ROOT}/d", 0o755)
    s.write_file(f"{ROOT}/d/inner", b"one")
    s.write_file(f"{ROOT}/d/other", b"two")
    s.write_file(f"{ROOT}/top", b"three")
    return s


def _whiteout_paths(diff):
    return [m.path for m in diff
            if m.ftype is FileType.CHR and m.mode == 0]


def _changed_paths(diff):
    return [m.path for m in diff
            if not (m.ftype is FileType.CHR and m.mode == 0)]


class TestWhiteoutEdges:
    def test_delete_then_recreate_as_other_type(self, sys):
        """file -> dir and dir -> file at the same path: the diff carries
        the new member (no whiteout — the path still exists)."""
        _, snap = snapshot_and_diff(sys, ROOT, {})
        sys.unlink(f"{ROOT}/top")
        sys.mkdir(f"{ROOT}/top", 0o755)
        sys.write_file(f"{ROOT}/top/leaf", b"x")
        sys.unlink(f"{ROOT}/d/inner")
        sys.unlink(f"{ROOT}/d/other")
        sys.rmdir(f"{ROOT}/d")
        sys.write_file(f"{ROOT}/d", b"now a file")
        diff, cur = snapshot_and_diff(sys, ROOT, snap)
        assert _changed_paths(diff) == ["d", "top", "top/leaf"]
        assert diff.member("d").ftype is FileType.REG
        assert diff.member("top").ftype is FileType.DIR
        # the children of the erstwhile directory are whited out; the
        # retyped paths themselves are not
        assert _whiteout_paths(diff) == ["d/inner", "d/other"]
        assert dict(apply_diff_to_snapshot(snap, diff)) == dict(cur)

    def test_whiteout_of_non_empty_directory(self, sys):
        """Removing a whole subtree whites out the directory and every
        descendant, and the snapshot forgets all of them."""
        _, snap = snapshot_and_diff(sys, ROOT, {})
        sys.unlink(f"{ROOT}/d/inner")
        sys.unlink(f"{ROOT}/d/other")
        sys.rmdir(f"{ROOT}/d")
        diff, cur = snapshot_and_diff(sys, ROOT, snap)
        assert _changed_paths(diff) == []
        assert _whiteout_paths(diff) == ["d", "d/inner", "d/other"]
        applied = apply_diff_to_snapshot(snap, diff)
        assert dict(applied) == dict(cur)
        assert not any(p.startswith("d") for p in applied)

    def test_member_ordering_is_stable(self, sys):
        """Changed members in path order, then whiteouts in path order —
        the serialization (and so the cache blob digest) is canonical."""
        _, snap = snapshot_and_diff(sys, ROOT, {})
        sys.write_file(f"{ROOT}/zz", b"last name, first change")
        sys.write_file(f"{ROOT}/aa", b"first name, last change")
        sys.unlink(f"{ROOT}/top")
        sys.unlink(f"{ROOT}/d/other")
        diff, _cur = snapshot_and_diff(sys, ROOT, snap)
        assert [m.path for m in diff] == ["aa", "zz", "d/other", "top"]
        assert _changed_paths(diff) == sorted(_changed_paths(diff))
        assert _whiteout_paths(diff) == sorted(_whiteout_paths(diff))

    def test_empty_diff_roundtrip(self, sys):
        """No change: empty diff, identical digest, apply is a no-op."""
        _, snap = snapshot_and_diff(sys, ROOT, {})
        diff, cur = snapshot_and_diff(sys, ROOT, snap)
        assert len(diff) == 0
        assert snapshot_digest(cur) == snapshot_digest(snap)
        assert dict(apply_diff_to_snapshot(snap, diff)) == dict(snap)

    def test_whiteout_then_recreate_identical(self, sys):
        """Delete a file and write identical bytes back before the next
        boundary: metadata and content match, so the diff is empty even
        though the inode is new."""
        _, snap = snapshot_and_diff(sys, ROOT, {})
        sys.unlink(f"{ROOT}/top")
        sys.write_file(f"{ROOT}/top", b"three")
        diff, cur = snapshot_and_diff(sys, ROOT, snap)
        assert len(diff) == 0
        assert dict(cur) == dict(snap)
