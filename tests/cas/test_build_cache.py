"""Unit tests for the Merkle-keyed build cache: key derivation,
self-healing records, GC reachability, and registry export/import."""

import json

import pytest

from repro.archive import TarArchive, TarMember
from repro.cas import BuildCache, ContentStore
from repro.cas.cache import CacheManifestError
from repro.containers import Registry
from repro.kernel import FileType


def _diff(path: str, data: bytes) -> TarArchive:
    return TarArchive([TarMember(path=path, ftype=FileType.REG, mode=0o644,
                                 uid=0, gid=0, data=data)])


def _chain(cache: BuildCache, base: str = "sha256:base", *texts: str,
           store: bool = True) -> str:
    """Extend a chain through *texts*, storing a diff per instruction."""
    key = cache.begin(base)
    for n, text in enumerate(texts):
        key = cache.extend(key, "RUN", text)
        if store:
            cache.store_diff(key, "RUN", text, _diff(f"f{n}", text.encode()))
    return key


class TestKeys:
    def test_chains_are_deterministic(self):
        a, b = BuildCache(), BuildCache()
        ka = _chain(a, "sha256:base", "x", "y", store=False)
        kb = _chain(b, "sha256:base", "x", "y", store=False)
        assert ka == kb

    def test_every_component_partitions(self):
        cache = BuildCache()
        root = cache.begin("sha256:base")
        assert cache.begin("sha256:other") != root
        assert cache.begin("sha256:base", force=True) != root
        assert (cache.begin("sha256:base", force=True, force_mode="seccomp")
                != cache.begin("sha256:base", force=True,
                               force_mode="fakeroot"))
        # force_mode is ignored unless force is on (matches ChImage)
        assert cache.begin("sha256:base", force_mode="seccomp") == root
        k = cache.extend(root, "RUN", "echo hi")
        assert cache.extend(root, "RUN", "echo ho") != k
        assert cache.extend(root, "COPY", "echo hi") != k
        assert cache.extend(root, "RUN", "echo hi", context="sha256:f") != k

    def test_shared_prefix_shares_keys(self):
        cache = BuildCache()
        k1 = _chain(cache, "sha256:base", "a", "b", store=False)
        root = cache.begin("sha256:base")
        k2 = cache.extend(root, "RUN", "a")
        assert cache.extend(k2, "RUN", "b") == k1


class TestHitMissStore:
    def test_roundtrip(self):
        cache = BuildCache()
        key = _chain(cache, "sha256:base", "echo hi")
        got = cache.lookup(key)
        assert got is not None
        assert [m.path for m in got] == ["f0"]
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_evicted_blob_self_heals_to_miss(self):
        cache = BuildCache(max_bytes=1)  # too small for any diff to stay
        key = _chain(cache, "sha256:base", "echo hi")
        # the store() itself fit (bound may overflow only for protected
        # blobs — cache diffs are unprotected, so the next put evicts)
        cache.store.put(b"x" * 1)
        assert cache.lookup(key) is None
        assert cache.stats.dropped_records == 1
        assert key not in cache.records  # record dropped, not just missed


class TestGc:
    def test_untag_then_gc_reclaims(self):
        cache = BuildCache()
        key = _chain(cache, "sha256:base", "a", "b")
        cache.tag("img", key)
        assert cache.gc()["records_dropped"] == 0
        assert cache.untag("img")
        res = cache.gc()
        assert res["records_dropped"] == 2
        assert res["blobs_reclaimed"] == 2
        assert res["bytes_reclaimed"] > 0
        assert cache.store.blob_count == 0

    def test_gc_keeps_tag_reachable_prefix(self):
        cache = BuildCache()
        key = _chain(cache, "sha256:base", "a", "b")
        mid = cache.extend(cache.begin("sha256:base"), "RUN", "a")
        cache.tag("short", mid)  # only the first instruction is reachable
        res = cache.gc()
        assert res["records_dropped"] == 1
        assert cache.lookup(mid) is not None
        assert cache.lookup(key) is None

    def test_gc_spares_blobs_shared_with_live_records(self):
        cache = BuildCache()
        root = cache.begin("sha256:base")
        k1 = cache.extend(root, "RUN", "a")
        k2 = cache.extend(root, "RUN", "b")
        same = _diff("f", b"same bytes")
        cache.store_diff(k1, "RUN", "a", same)
        cache.store_diff(k2, "RUN", "b", same)  # dedups to one blob
        cache.tag("keep", k1)
        res = cache.gc()  # drops k2's record but must keep the blob
        assert res["records_dropped"] == 1
        assert res["blobs_reclaimed"] == 0
        assert cache.lookup(k1) is not None

    def test_gc_never_touches_refcounted_blobs_on_shared_store(self):
        store = ContentStore()
        registry_blob = store.put(b"a pushed layer")
        store.incref(registry_blob)  # the registry's reference
        cache = BuildCache(store=store)
        key = _chain(cache, "sha256:base", "a")
        cache.reset()
        assert store.has(registry_blob)

    def test_reset_drops_everything(self):
        cache = BuildCache()
        key = _chain(cache, "sha256:base", "a", "b")
        cache.tag("img", key)
        res = cache.reset()
        assert res["records_dropped"] == 2
        assert not cache.records and not cache.tags
        assert cache.tree() == "build cache is empty"


class TestExportImport:
    def test_registry_roundtrip_hits_everywhere(self):
        src = BuildCache()
        key = _chain(src, "sha256:base", "a", "b")
        src.tag("img", key)
        registry = Registry("site")
        src.export_to_registry(registry, "alice/cache:latest")
        assert registry.has_cache("alice/cache:latest")

        dst = BuildCache()
        installed = dst.import_from_registry(registry, "alice/cache:latest")
        assert installed == 2
        assert dst.keys() == src.keys()
        assert dst.tags == src.tags
        for k in src.keys():
            assert dst.lookup(k).digest() == src.lookup(k).digest()

    def test_import_verifies_blob_digests(self):
        src = BuildCache()
        _chain(src, "sha256:base", "a")
        manifest = src.to_manifest()
        with pytest.raises(CacheManifestError):
            BuildCache().import_manifest(manifest, lambda d: b"tampered")

    def test_version_gate(self):
        with pytest.raises(CacheManifestError):
            BuildCache().import_manifest({"version": 999}, lambda d: b"")

    def test_manifest_is_canonical_json(self):
        src = BuildCache()
        key = _chain(src, "sha256:base", "a")
        src.tag("img", key)
        one = json.dumps(src.to_manifest(), sort_keys=True)
        two = json.dumps(src.to_manifest(), sort_keys=True)
        assert one == two


class TestIntrospection:
    def test_tree_marks_records_and_tags(self):
        cache = BuildCache()
        key = _chain(cache, "sha256:base", "echo hi")
        cache.tag("img", key)
        text = cache.tree()
        assert "* " in text and "(img)" in text
        assert "RUN echo hi" in text

    def test_summary_counts(self):
        cache = BuildCache()
        _chain(cache, "sha256:base", "a")
        assert "records:       1" in cache.summary()
