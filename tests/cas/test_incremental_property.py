"""Property tests pinning the incremental snapshot walker to the oracle.

The cold-build fast path's whole correctness story rests on one
contract: :func:`repro.cas.snapshot_and_diff` driven by the VFS change
journal returns **bit-identical** results to packing the whole tree and
diffing it from scratch — the same snapshot mapping, the same
:func:`snapshot_digest`, the same *serialized* diff archive.  Not
approximately: ``==`` on every byte, across random mutation sequences
covering writes, renames, deletions (whiteouts), hardlinks, mode/owner
changes, xattrs, fakeroot ownership lies, and batches that change
nothing at all.  If the journal ever misses a mutation or a splice goes
stale, these tests — not a golden transcript three layers up — are what
fails.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cas.diff import (
    Snapshot,
    apply_diff_to_snapshot,
    snapshot_and_diff,
    snapshot_digest,
)
from repro.errors import KernelError
from repro.fakeroot import PSEUDO, FakerootSyscalls
from repro.kernel import FileType, Kernel, Syscalls, make_ext4
from repro.sim.opts import reference_engine

ROOT = "/img"

#: Small closed path universe — collisions (reuse of the same path for a
#: different file type, rename over an existing entry) are the point.
RELS = ["a", "b", "c", "a/x", "a/y", "b/x", "b/y", "c/x", "a/x/q", "a/x/r"]

DATA = [b"", b"one", b"two two", b"\x00" * 64, b"payload " * 32]

ops = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(RELS),
              st.integers(0, len(DATA) - 1)),
    st.tuples(st.just("mkdir"), st.sampled_from(RELS)),
    st.tuples(st.just("unlink"), st.sampled_from(RELS)),
    st.tuples(st.just("rmtree"), st.sampled_from(RELS)),
    st.tuples(st.just("rename"), st.sampled_from(RELS),
              st.sampled_from(RELS)),
    # owner keeps rwx so the tree stays walkable by its owner (an
    # unreadable directory breaks reference and walker identically)
    st.tuples(st.just("chmod"), st.sampled_from(RELS),
              st.sampled_from([0o700, 0o750, 0o755, 0o2755, 0o4755])),
    st.tuples(st.just("chown"), st.sampled_from(RELS),
              st.sampled_from([0, 7, 1000]), st.sampled_from([0, 7])),
    st.tuples(st.just("symlink"), st.sampled_from(RELS),
              st.sampled_from(RELS)),
    st.tuples(st.just("hardlink"), st.sampled_from(RELS),
              st.sampled_from(RELS)),
    st.tuples(st.just("mknod"), st.sampled_from(RELS)),
    st.tuples(st.just("xattr"), st.sampled_from(RELS),
              st.sampled_from(["user.k", "security.capability"])),
    st.tuples(st.just("noop")),
)

batches = st.lists(st.lists(ops, max_size=6), min_size=1, max_size=6)


def _apply(sys, root, op):
    """Run one mutation; failures (missing parents, type conflicts,
    permissions) are part of the model — both walkers see whatever state
    results."""
    kind = op[0]
    path = f"{root}/{op[1]}" if len(op) > 1 else root
    try:
        if kind == "write":
            sys.write_file(path, DATA[op[2]])
        elif kind == "mkdir":
            sys.mkdir(path, 0o755)
        elif kind == "unlink":
            sys.unlink(path)
        elif kind == "rmtree":
            _rm_tree(sys, path)
        elif kind == "rename":
            sys.rename(path, f"{root}/{op[2]}")
        elif kind == "chmod":
            sys.chmod(path, op[2])
        elif kind == "chown":
            sys.chown(path, op[2], op[3])
        elif kind == "symlink":
            sys.symlink(op[2], path)
        elif kind == "hardlink":
            sys.link(path, f"{root}/{op[2]}")
        elif kind == "mknod":
            sys.mknod(path, FileType.CHR, 0o600, rdev=(1, 3))
        elif kind == "xattr":
            sys.setxattr(path, op[2], b"v")
    except KernelError:
        pass


def _rm_tree(sys, path):
    st_ = sys.lstat(path)
    if st_.ftype is FileType.DIR:
        for entry in sys.readdir(path):
            _rm_tree(sys, f"{path}/{entry.name}")
        sys.rmdir(path)
    else:
        sys.unlink(path)


def _seed(sys, root=ROOT):
    sys.mkdir(root, 0o755)
    sys.mkdir(f"{root}/a", 0o755)
    sys.mkdir(f"{root}/b", 0o755)
    sys.write_file(f"{root}/a/x", b"seed")
    sys.write_file(f"{root}/b/x", b"seed2")
    sys.symlink("a/x", f"{root}/c")


def _check_batches(sys, batch_list, root=ROOT):
    """Replay mutation batches, comparing the journal walker against the
    reference oracle at every boundary."""
    prev_inc = {}
    prev_ref = {}
    for batch in batch_list:
        for op in batch:
            _apply(sys, root, op)
        diff_inc, cur_inc = snapshot_and_diff(sys, root, prev_inc)
        with reference_engine():
            diff_ref, cur_ref = snapshot_and_diff(sys, root, prev_ref)
        assert dict(cur_inc) == dict(cur_ref)
        assert snapshot_digest(cur_inc) == snapshot_digest(dict(cur_ref))
        assert diff_inc.serialize() == diff_ref.serialize()
        # the builder's cache-hit path: applying the diff to the previous
        # snapshot reproduces the new snapshot without walking
        assert dict(apply_diff_to_snapshot(prev_inc, diff_inc)) \
            == dict(cur_inc)
        prev_inc, prev_ref = cur_inc, cur_ref


class TestJournalWalkerParity:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(batch_list=batches)
    def test_plain_kernel(self, batch_list):
        """Random mutation sequences through the raw kernel interface."""
        kernel = Kernel(make_ext4(), hostname="h")
        sys = Syscalls(kernel.init_process)
        _seed(sys)
        _check_batches(sys, batch_list)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(batch_list=batches)
    def test_fakeroot_lies(self, batch_list):
        """The same sequences through a fakeroot wrapper: chown/mknod
        mutate only the lie database, yet must dirty the journal."""
        kernel = Kernel(make_ext4(), hostname="h")
        root_sys = Syscalls(kernel.init_process)
        root_sys.mkdir("/home", 0o755)
        root_sys.mkdir("/home/alice", 0o755)
        root_sys.chown("/home/alice", 1000, 1000)
        alice = kernel.login(1000, 1000, user="alice", home="/home/alice")
        sys = FakerootSyscalls(Syscalls(alice), PSEUDO)
        root = "/home/alice/img"  # writable by alice
        _seed(sys, root)
        _check_batches(sys, batch_list, root)


class TestJournalWalkerEdges:
    def _fresh(self):
        kernel = Kernel(make_ext4(), hostname="h")
        sys = Syscalls(kernel.init_process)
        _seed(sys)
        return sys

    def test_empty_batch_is_empty_diff(self):
        """No mutations => empty diff and the early-exit reuses the
        previous snapshot object outright."""
        sys = self._fresh()
        _, snap = snapshot_and_diff(sys, ROOT, {})
        diff, cur = snapshot_and_diff(sys, ROOT, snap)
        assert len(diff) == 0
        assert cur is snap

    def test_view_mismatch_falls_back(self):
        """A snapshot from one view never splices into another: digests
        still agree with the oracle after switching interfaces."""
        sys = self._fresh()
        _, snap = snapshot_and_diff(sys, ROOT, {})
        other = FakerootSyscalls(
            Syscalls(sys.kernel.init_process.fork(comm="fr")), PSEUDO)
        assert other.digest_view_key() != sys.digest_view_key()
        diff, cur = snapshot_and_diff(other, ROOT, snap)
        with reference_engine():
            diff_ref, cur_ref = snapshot_and_diff(other, ROOT, dict(snap))
        assert dict(cur) == dict(cur_ref)
        assert diff.serialize() == diff_ref.serialize()

    def test_reference_snapshot_never_splices(self):
        """A reference-produced Snapshot has no view key and seeds a diff
        but not the fast path."""
        sys = self._fresh()
        with reference_engine():
            _, snap = snapshot_and_diff(sys, ROOT, {})
        assert isinstance(snap, Snapshot)
        assert snap.view_key is None
        sys.write_file(f"{ROOT}/new", b"x")
        diff, cur = snapshot_and_diff(sys, ROOT, snap)
        assert [m.path for m in diff] == ["new"]
