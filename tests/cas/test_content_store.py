"""Property tests for the content-addressed store: round-trips, GC
safety, and the eviction invariants the build cache depends on."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cas import CasError, ContentStore, blob_digest

_prop = settings(max_examples=50, derandomize=True,
                 suppress_health_check=[HealthCheck.too_slow])

blobs_st = st.lists(st.binary(min_size=0, max_size=64), max_size=20)


class TestRoundTrip:
    @_prop
    @given(blobs=blobs_st)
    def test_put_get_roundtrip(self, blobs):
        """Every blob ever put comes back byte-identical via its digest."""
        store = ContentStore()
        digests = [store.put(b) for b in blobs]
        for digest, blob in zip(digests, blobs):
            assert digest == blob_digest(blob)
            assert store.get(digest) == blob

    @_prop
    @given(blobs=blobs_st)
    def test_dedup_stores_unique_bytes_once(self, blobs):
        store = ContentStore()
        for b in blobs:
            store.put(b)
        unique = {bytes(b) for b in blobs}
        assert store.blob_count == len(unique)
        assert store.size_bytes == sum(len(b) for b in unique)
        assert store.stats.bytes_deduped == \
            store.stats.bytes_in - store.stats.bytes_stored

    def test_get_missing_raises(self):
        store = ContentStore()
        with pytest.raises(CasError):
            store.get("sha256:" + "0" * 64)
        assert store.stats.misses == 1


class TestGcSafety:
    @_prop
    @given(blobs=blobs_st,
           protect=st.lists(st.sampled_from(["ref", "pin", "keep", "no"]),
                            max_size=20))
    def test_gc_never_reclaims_protected_or_kept(self, blobs, protect):
        """GC reclaims exactly the unprotected, un-kept blobs — never a
        referenced, pinned, or keep-listed one."""
        store = ContentStore()
        keep = set()
        shielded = set()
        for blob, how in zip(blobs, protect):
            d = store.put(blob)
            if how == "ref":
                store.incref(d)
                shielded.add(d)
            elif how == "pin":
                store.pin(d)
                shielded.add(d)
            elif how == "keep":
                keep.add(d)
        before = set(store.digests())
        reclaimed = set(store.gc(keep=keep))
        # pins/refs are untouched by gc, so protected() still answers for
        # reclaimed digests: exactly the unprotected, un-kept ones went
        expected = {d for d in before
                    if not store.protected(d) and d not in keep}
        assert reclaimed == expected
        for d in shielded | keep:
            assert store.has(d)

    def test_decref_reexposes_to_gc(self):
        store = ContentStore()
        d = store.put(b"layer")
        store.incref(d)
        assert store.gc() == []
        store.decref(d)
        assert store.gc() == [d]
        with pytest.raises(CasError):
            store.decref(d)  # underflow


class TestEviction:
    @_prop
    @given(blobs=st.lists(st.binary(min_size=1, max_size=32),
                          min_size=1, max_size=30),
           protect=st.lists(st.booleans(), max_size=30))
    def test_bound_holds_unless_everything_is_protected(self, blobs,
                                                        protect):
        """After any put, either the size bound holds or everything
        resident except the blob just inserted is protected (the bound
        overflows rather than lose referenced data, and put never evicts
        its own incoming blob) — and protected blobs are never evicted."""
        store = ContentStore(max_bytes=64)
        shielded = {}
        for blob, prot in zip(blobs, protect + [False] * len(blobs)):
            d = store.put(blob)
            if prot and not store.protected(d):
                store.pin(d)
                shielded[d] = bytes(blob)
            assert (store.size_bytes <= 64
                    or all(store.protected(x)
                           for x in store.digests()[:-1]))
            for sd, sblob in shielded.items():
                assert store.has(sd), "evicted a pinned blob"
        for sd, sblob in shielded.items():
            assert store.get(sd) == sblob

    def test_lru_order_evicts_coldest_first(self):
        store = ContentStore(max_bytes=8)
        a = store.put(b"aaaa")
        b = store.put(b"bbbb")
        store.get(a)           # a is now hotter than b
        store.put(b"cccc")     # must evict b, not a
        assert store.has(a) and not store.has(b)
        assert store.stats.evictions == 1
        assert store.stats.bytes_evicted == 4

    def test_bad_bound_rejected(self):
        with pytest.raises(CasError):
            ContentStore(max_bytes=0)
