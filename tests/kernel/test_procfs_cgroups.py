"""Tests for /proc, /sys, and the cgroups v1/v2 split."""

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import OVERFLOW_UID, Syscalls, make_procfs, make_sysfs
from repro.kernel.cgroups import CgroupV1Hierarchy, CgroupV2Hierarchy


class TestProcfs:
    def test_uid_map_content_type3(self, kernel, type3_sys):
        proc_fs = make_procfs(kernel, type3_sys.proc)
        type3_sys.unshare_mount()
        type3_sys.mkdir_p("/home/alice/proc")
        type3_sys.proc.mnt_ns.add_mount("/home/alice/proc", proc_fs)
        content = type3_sys.read_file("/home/alice/proc/self/uid_map").decode()
        assert content.split() == ["0", "1000", "1"]

    def test_uid_map_content_type2(self, kernel, type2_sys):
        """Figure 1/4 shape: 0->user, 1..65535 -> subordinate range."""
        proc_fs = make_procfs(kernel, type2_sys.proc)
        type2_sys.unshare_mount()
        type2_sys.mkdir_p("/home/alice/proc")
        type2_sys.proc.mnt_ns.add_mount("/home/alice/proc", proc_fs)
        lines = type2_sys.read_file(
            "/home/alice/proc/self/uid_map").decode().splitlines()
        assert lines[0].split() == ["0", "1000", "1"]
        assert lines[1].split() == ["1", "200000", "65535"]

    def test_proc_owned_by_nobody_in_container(self, kernel, type3_sys):
        """Figure 5's mechanism: /proc entries owned by (unmapped) host root
        appear as nobody inside a single-ID namespace."""
        proc_fs = make_procfs(kernel, type3_sys.proc)
        type3_sys.unshare_mount()
        type3_sys.mkdir_p("/home/alice/proc")
        type3_sys.proc.mnt_ns.add_mount("/home/alice/proc", proc_fs)
        st = type3_sys.stat("/home/alice/proc/cpuinfo")
        assert st.st_uid == OVERFLOW_UID
        # ...and even container "root" cannot write them
        with pytest.raises(KernelError) as exc:
            type3_sys.write_file("/home/alice/proc/sys/kernel/hostname", b"x")
        assert exc.value.errno == Errno.EACCES

    def test_max_user_namespaces_sysctl_exposed(self, kernel, root_sys):
        proc_fs = make_procfs(kernel, kernel.init_process)
        root_sys.mkdir_p("/proc")
        kernel.init_process.mnt_ns.add_mount("/proc", proc_fs)
        val = root_sys.read_file("/proc/sys/user/max_user_namespaces")
        assert int(val) == kernel.sysctl["user.max_user_namespaces"]

    def test_sysfs(self, kernel, root_sys):
        sysfs = make_sysfs(kernel)
        root_sys.mkdir_p("/sys")
        kernel.init_process.mnt_ns.add_mount("/sys", sysfs)
        assert root_sys.read_file("/sys/kernel/arch").decode().strip() == "x86_64"


class TestCgroups:
    def test_v1_requires_host_root(self, kernel, alice):
        h = CgroupV1Hierarchy()
        root_cred = kernel.init_process.cred
        g = h.create(h.root, "hpc", root_cred)
        h.set_limit(g, "memory.limit_in_bytes", 1 << 30, root_cred)
        with pytest.raises(KernelError) as exc:
            h.create(h.root, "user", alice.cred)
        assert exc.value.errno == Errno.EPERM

    def test_v1_container_root_still_denied(self, kernel, type3_sys):
        """Rootless containers leave cgroups unused (paper §4.1)."""
        h = CgroupV1Hierarchy()
        with pytest.raises(KernelError):
            h.create(h.root, "ctr", type3_sys.cred)

    def test_v2_delegation_enables_unprivileged_control(self, kernel, alice):
        """The crun cgroups-v2 prototype path (paper §4.1)."""
        h = CgroupV2Hierarchy()
        root_cred = kernel.init_process.cred
        session = h.create(h.root, "user-1000", root_cred)
        h.delegate(session, 1000, root_cred)
        sub = h.create(session, "podman-job", alice.cred)
        h.set_limit(sub, "memory.max", 2 << 30, alice.cred)
        h.attach(sub, alice.pid, alice.cred)
        assert sub.limits["memory.max"] == 2 << 30
        assert alice.pid in sub.pids

    def test_v2_without_delegation_denied(self, kernel, alice):
        h = CgroupV2Hierarchy()
        with pytest.raises(KernelError):
            h.create(h.root, "x", alice.cred)

    def test_v2_unknown_control_einval(self, kernel):
        h = CgroupV2Hierarchy()
        root_cred = kernel.init_process.cred
        g = h.create(h.root, "a", root_cred)
        with pytest.raises(KernelError) as exc:
            h.set_limit(g, "bogus.key", 1, root_cred)
        assert exc.value.errno == Errno.EINVAL

    def test_v2_delegation_requires_root(self, kernel, alice):
        h = CgroupV2Hierarchy()
        g = h.create(h.root, "a", kernel.init_process.cred)
        with pytest.raises(KernelError):
            h.delegate(g, 1000, alice.cred)
