"""User namespace tests: map installation rules, translation, setgroups trap."""

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import (
    IdMap,
    IdMapEntry,
    OVERFLOW_GID,
    OVERFLOW_UID,
    SetgroupsPolicy,
    UserNamespace,
)


@pytest.fixture
def init_ns():
    return UserNamespace.initial()


@pytest.fixture
def child_ns(init_ns):
    return UserNamespace(init_ns, owner_uid=1000, owner_gid=1000)


class TestMapInstall:
    def test_maps_start_unset(self, child_ns):
        assert child_ns.uid_map is None
        assert child_ns.gid_map is None

    def test_unprivileged_single_map_ok(self, child_ns):
        child_ns.set_uid_map(IdMap.single(0, 1000), writer_euid=1000,
                             writer_privileged=False)
        assert child_ns.uid_to_host(0) == 1000

    def test_unprivileged_multi_map_rejected(self, child_ns):
        m = IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 10)])
        with pytest.raises(KernelError) as exc:
            child_ns.set_uid_map(m, writer_euid=1000, writer_privileged=False)
        assert exc.value.errno == Errno.EPERM

    def test_unprivileged_map_must_be_own_id(self, child_ns):
        with pytest.raises(KernelError):
            child_ns.set_uid_map(IdMap.single(0, 1001), writer_euid=1000,
                                 writer_privileged=False)

    def test_privileged_multi_map_ok(self, child_ns):
        m = IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)])
        child_ns.set_uid_map(m, writer_euid=0, writer_privileged=True)
        assert child_ns.uid_to_host(25) == 200024

    def test_map_write_is_once_only(self, child_ns):
        child_ns.set_uid_map(IdMap.single(0, 1000), writer_euid=1000,
                             writer_privileged=False)
        with pytest.raises(KernelError) as exc:
            child_ns.set_uid_map(IdMap.single(0, 1000), writer_euid=1000,
                                 writer_privileged=False)
        assert exc.value.errno == Errno.EPERM

    def test_initial_ns_map_is_immutable(self, init_ns):
        with pytest.raises(KernelError):
            init_ns.set_uid_map(IdMap.single(0, 0), writer_euid=0,
                                writer_privileged=True)


class TestSetgroupsTrap:
    """Paper §2.1.4: gid_map vs setgroups ordering."""

    def test_unprivileged_gid_map_requires_setgroups_denied(self, child_ns):
        with pytest.raises(KernelError) as exc:
            child_ns.set_gid_map(IdMap.single(0, 1000), writer_egid=1000,
                                 writer_privileged=False)
        assert exc.value.errno == Errno.EPERM

    def test_deny_then_gid_map_ok(self, child_ns):
        child_ns.deny_setgroups()
        child_ns.set_gid_map(IdMap.single(0, 1000), writer_egid=1000,
                             writer_privileged=False)
        assert child_ns.gid_to_host(0) == 1000

    def test_privileged_helper_may_skip_deny(self, child_ns):
        # newgidmap acting with CAP_SETGID in the parent is allowed to
        # install the map with setgroups still "allow" (it is responsible
        # for the policy decision — cf. CVE-2018-7169).
        child_ns.set_gid_map(IdMap.single(0, 1000), writer_egid=0,
                             writer_privileged=True)
        assert child_ns.setgroups == SetgroupsPolicy.ALLOW

    def test_setgroups_frozen_after_gid_map(self, child_ns):
        child_ns.deny_setgroups()
        child_ns.set_gid_map(IdMap.single(0, 1000), writer_egid=1000,
                             writer_privileged=False)
        with pytest.raises(KernelError):
            child_ns.deny_setgroups()


class TestTranslation:
    def _mapped(self, init_ns):
        ns = UserNamespace(init_ns, owner_uid=1000, owner_gid=1000)
        ns.set_uid_map(
            IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)]),
            writer_euid=0, writer_privileged=True,
        )
        ns.set_gid_map(
            IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 300000, 65535)]),
            writer_egid=0, writer_privileged=True,
        )
        return ns

    def test_to_host_and_back(self, init_ns):
        ns = self._mapped(init_ns)
        assert ns.uid_to_host(0) == 1000
        assert ns.uid_from_host(1000) == 0
        assert ns.uid_to_host(48) == 200047
        assert ns.uid_from_host(200047) == 48

    def test_unmapped_host_id_displays_as_overflow(self, init_ns):
        """Paper §2.1.1 case 3: in use on host, unmapped -> nobody/nogroup."""
        ns = self._mapped(init_ns)
        assert ns.uid_from_host(5) is None
        assert ns.uid_display(5) == OVERFLOW_UID
        assert ns.gid_display(7) == OVERFLOW_GID

    def test_nested_namespace_translation(self, init_ns):
        outer = self._mapped(init_ns)
        inner = UserNamespace(outer, owner_uid=1000, owner_gid=1000)
        inner.set_uid_map(IdMap.single(0, 0), writer_euid=0,
                          writer_privileged=True)
        # inner 0 -> outer 0 -> host 1000
        assert inner.uid_to_host(0) == 1000
        assert inner.uid_from_host(1000) == 0
        assert inner.uid_from_host(200000) is None  # outer 1 unmapped in inner

    def test_nested_outside_range_must_map_in_parent(self, init_ns):
        outer = self._mapped(init_ns)
        inner = UserNamespace(outer, owner_uid=1000, owner_gid=1000)
        # outer has no mapping for inside id 70000
        with pytest.raises(KernelError):
            inner.set_uid_map(IdMap.single(0, 70000), writer_euid=0,
                              writer_privileged=True)

    def test_ancestry(self, init_ns, child_ns):
        assert init_ns.is_ancestor_of(child_ns)
        assert not child_ns.is_ancestor_of(init_ns)
        grand = UserNamespace(child_ns, 1000, 1000)
        assert init_ns.is_ancestor_of(grand)
        assert child_ns.is_ancestor_of(grand)

    def test_nesting_limit(self, init_ns):
        ns = init_ns
        for _ in range(32):
            ns = UserNamespace(ns, 0, 0)
        with pytest.raises(KernelError) as exc:
            UserNamespace(ns, 0, 0)
        assert exc.value.errno == Errno.EUSERS
