"""Filesystem syscall semantics — especially chown(2), the call whose
failure defines the paper's Type III build problem (Figure 2)."""

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import (
    FileType,
    MountFlags,
    OVERFLOW_UID,
    Syscalls,
    make_nfs,
    make_tmpfs,
)


class TestBasicFileOps:
    def test_write_read_roundtrip(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"hello")
        assert alice_sys.read_file("/home/alice/f") == b"hello"

    def test_append(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"a")
        alice_sys.write_file("/home/alice/f", b"b", append=True)
        assert alice_sys.read_file("/home/alice/f") == b"ab"

    def test_create_respects_umask(self, alice_sys):
        alice_sys.proc.umask = 0o027
        alice_sys.write_file("/home/alice/f", b"")
        assert alice_sys.stat("/home/alice/f").st_mode & 0o777 == 0o640

    def test_new_file_owned_by_fsids(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        st = alice_sys.stat("/home/alice/f")
        assert (st.kuid, st.kgid) == (1000, 1000)

    def test_write_denied_in_foreign_dir(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.write_file("/home/bob/f", b"")
        assert exc.value.errno == Errno.EACCES

    def test_read_denied_without_permission(self, alice_sys, bob_sys):
        alice_sys.write_file("/home/alice/private", b"x")
        alice_sys.chmod("/home/alice/private", 0o600)
        with pytest.raises(KernelError) as exc:
            bob_sys.read_file("/home/alice/private")
        assert exc.value.errno == Errno.EACCES

    def test_mkdir_p(self, alice_sys):
        alice_sys.mkdir_p("/home/alice/a/b/c")
        assert alice_sys.stat("/home/alice/a/b/c").ftype is FileType.DIR

    def test_unlink_rename(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"v")
        alice_sys.rename("/home/alice/f", "/home/alice/g")
        assert alice_sys.read_file("/home/alice/g") == b"v"
        alice_sys.unlink("/home/alice/g")
        assert not alice_sys.exists("/home/alice/g")

    def test_rename_dir(self, alice_sys):
        alice_sys.mkdir_p("/home/alice/d1/sub")
        alice_sys.write_file("/home/alice/d1/sub/f", b"z")
        alice_sys.rename("/home/alice/d1", "/home/alice/d2")
        assert alice_sys.read_file("/home/alice/d2/sub/f") == b"z"

    def test_rmdir_nonempty(self, alice_sys):
        alice_sys.mkdir_p("/home/alice/d/sub")
        with pytest.raises(KernelError) as exc:
            alice_sys.rmdir("/home/alice/d")
        assert exc.value.errno == Errno.ENOTEMPTY
        alice_sys.rmdir("/home/alice/d/sub")
        alice_sys.rmdir("/home/alice/d")

    def test_symlink_and_readlink(self, alice_sys):
        alice_sys.write_file("/home/alice/real", b"data")
        alice_sys.symlink("/home/alice/real", "/home/alice/lnk")
        assert alice_sys.readlink("/home/alice/lnk") == "/home/alice/real"
        assert alice_sys.read_file("/home/alice/lnk") == b"data"

    def test_hard_link(self, alice_sys):
        alice_sys.write_file("/home/alice/a", b"1")
        alice_sys.link("/home/alice/a", "/home/alice/b")
        st = alice_sys.stat("/home/alice/b")
        assert st.st_nlink == 2

    def test_readdir_sorted(self, alice_sys):
        for name in ("zz", "aa", "mm"):
            alice_sys.write_file(f"/home/alice/{name}", b"")
        names = [e.name for e in alice_sys.readdir("/home/alice")]
        assert names == sorted(names)

    def test_chdir_getcwd(self, alice_sys):
        alice_sys.chdir("/home/alice")
        assert alice_sys.getcwd() == "/home/alice"
        alice_sys.write_file("rel.txt", b"relative")
        assert alice_sys.read_file("/home/alice/rel.txt") == b"relative"

    def test_sticky_tmp_protects_other_users_files(self, alice_sys, bob_sys):
        alice_sys.write_file("/tmp/alice-file", b"x")
        with pytest.raises(KernelError) as exc:
            bob_sys.unlink("/tmp/alice-file")
        assert exc.value.errno == Errno.EPERM
        alice_sys.unlink("/tmp/alice-file")


class TestChownSemantics:
    """The heart of the paper: who may chown what, where."""

    def test_host_root_chown_anything(self, root_sys):
        root_sys.write_file("/data/f", b"")
        root_sys.chown("/data/f", 47, 47)
        st = root_sys.stat("/data/f")
        assert (st.kuid, st.kgid) == (47, 47)

    def test_host_user_chown_eperm(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        with pytest.raises(KernelError) as exc:
            alice_sys.chown("/home/alice/f", 1001, 1001)
        assert exc.value.errno == Errno.EPERM

    def test_host_user_noop_chown_ok(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        alice_sys.chown("/home/alice/f", 1000, 1000)  # no-op succeeds

    def test_host_user_chgrp_to_own_group_ok(self, alice_sys):
        alice_sys.cred.groups = frozenset({1000, 2000})
        alice_sys.write_file("/home/alice/f", b"")
        alice_sys.chown("/home/alice/f", -1, 2000)
        assert alice_sys.stat("/home/alice/f").kgid == 2000

    def test_type3_chown_unmapped_einval(self, type3_sys):
        """Figure 2's failure: rpm's chown to a package UID/GID that has no
        mapping -> EINVAL, build dies with 'cpio: chown'."""
        type3_sys.write_file("/home/alice/f", b"")
        with pytest.raises(KernelError) as exc:
            type3_sys.chown("/home/alice/f", 0, 998)  # gid 998: unmapped
        assert exc.value.errno == Errno.EINVAL

    def test_type3_chown_to_mapped_root_ok(self, type3_sys):
        """chown 0:0 inside the container is a no-op on the host side —
        why plain `yum install epel-release` works (Figure 8 steps 1-2)."""
        type3_sys.write_file("/home/alice/f", b"")
        type3_sys.chown("/home/alice/f", 0, 0)
        st = type3_sys.stat("/home/alice/f")
        assert (st.st_uid, st.st_gid) == (0, 0)  # displayed as root
        assert (st.kuid, st.kgid) == (1000, 1000)  # really alice

    def test_type2_chown_to_subordinate_ids(self, type2_sys):
        """Type II: chown to any mapped ID works; the host file gets the
        subordinate UID (Figure 1's map arithmetic)."""
        type2_sys.write_file("/home/alice/f", b"")
        type2_sys.chown("/home/alice/f", 25, 25)
        st = type2_sys.stat("/home/alice/f")
        assert (st.st_uid, st.st_gid) == (25, 25)
        assert st.kuid == 200024  # 1 -> 200000, so 25 -> 200024
        assert st.kgid == 300024

    def test_type2_chown_beyond_map_einval(self, type2_sys):
        type2_sys.write_file("/home/alice/f", b"")
        with pytest.raises(KernelError) as exc:
            type2_sys.chown("/home/alice/f", 65536, -1)
        assert exc.value.errno == Errno.EINVAL

    def test_container_root_cannot_chown_unmapped_owner(self, type3_sys,
                                                        root_sys):
        """A file owned by an ID outside the map (e.g. host root) is beyond
        even the container root's CAP_CHOWN (capable_wrt_inode_uidgid)."""
        root_sys.write_file("/data/rootfile", b"")
        root_sys.chmod("/data/rootfile", 0o666)
        with pytest.raises(KernelError) as exc:
            type3_sys.chown("/data/rootfile", 0, 0)
        assert exc.value.errno == Errno.EPERM

    def test_chown_clears_setuid_bits(self, root_sys):
        root_sys.write_file("/data/su", b"")
        root_sys.chmod("/data/su", 0o4755)
        sys = Syscalls(root_sys.kernel.init_process.fork())
        sys.cred.caps = sys.cred.caps - {__import__("repro.kernel",
                                                    fromlist=["Cap"]).Cap.FSETID}
        sys.chown("/data/su", 47, -1)
        assert root_sys.stat("/data/su").st_mode & 0o6000 == 0

    def test_stat_translates_unmapped_owner_to_overflow(self, type3_sys,
                                                        root_sys):
        """§2.1.1 case 3: files owned by unmapped IDs display as nobody."""
        root_sys.write_file("/data/rootfile", b"")
        st = type3_sys.stat("/data/rootfile")
        assert st.st_uid == OVERFLOW_UID
        assert st.kuid == 0

    def test_nfs_server_rejects_foreign_ids_even_in_type2(self, kernel,
                                                          type2_sys):
        """§4.2: 'the UID/GID mappers cannot work when the container storage
        location is a shared filesystem, such as NFS'."""
        nfs = make_nfs("nfs-home")
        root = Syscalls(kernel.init_process)
        root.mkdir_p("/nfs")
        kernel.init_process.mnt_ns.add_mount("/nfs", nfs)
        # make it writable by alice
        root.chown("/nfs", 1000, 1000)
        type2_sys.write_file("/nfs/f", b"")
        with pytest.raises(KernelError) as exc:
            type2_sys.chown("/nfs/f", 25, 25)
        assert exc.value.errno == Errno.EPERM
        assert "server rejected" in str(exc.value)

    def test_local_tmp_works_where_nfs_fails(self, type2_sys):
        """...which is why Astra used /tmp or local disk for storage."""
        type2_sys.write_file("/tmp/f", b"")
        type2_sys.chown("/tmp/f", 25, 25)
        assert type2_sys.stat("/tmp/f").st_uid == 25


class TestChmod:
    def test_owner_chmod(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        alice_sys.chmod("/home/alice/f", 0o4750)
        assert alice_sys.stat("/home/alice/f").st_mode & 0o7777 == 0o4750

    def test_non_owner_chmod_eperm(self, alice_sys, bob_sys):
        alice_sys.write_file("/tmp/f", b"")
        alice_sys.chmod("/tmp/f", 0o666)
        with pytest.raises(KernelError) as exc:
            bob_sys.chmod("/tmp/f", 0o777)
        assert exc.value.errno == Errno.EPERM

    def test_setgid_silently_dropped_for_foreign_group(self, root_sys,
                                                       alice_sys):
        root_sys.write_file("/tmp/g", b"")
        root_sys.chown("/tmp/g", 1000, 2000)  # alice's file, group 2000
        alice_sys.chmod("/tmp/g", 0o2755)
        assert alice_sys.stat("/tmp/g").st_mode & 0o2000 == 0


class TestMknod:
    def test_host_root_mknod_device(self, root_sys):
        root_sys.mknod("/data/null", FileType.CHR, 0o666, rdev=(1, 3))
        st = root_sys.stat("/data/null")
        assert st.ftype is FileType.CHR
        assert st.st_rdev == (1, 3)

    def test_container_root_mknod_device_eperm(self, type3_sys):
        """Figure 7's mknod is privileged: only fakeroot's lie makes it
        'succeed' in a container."""
        with pytest.raises(KernelError) as exc:
            type3_sys.mknod("/home/alice/dev", FileType.CHR, 0o666, rdev=(1, 1))
        assert exc.value.errno == Errno.EPERM

    def test_type2_mknod_device_also_eperm(self, type2_sys):
        with pytest.raises(KernelError):
            type2_sys.mknod("/home/alice/dev", FileType.BLK, 0o660, rdev=(8, 0))

    def test_fifo_ok_for_users(self, alice_sys):
        alice_sys.mknod("/home/alice/pipe", FileType.FIFO, 0o644)
        assert alice_sys.stat("/home/alice/pipe").ftype is FileType.FIFO


class TestSetgidDirs:
    def test_group_inheritance(self, root_sys, alice_sys):
        root_sys.mkdir("/data/shared", 0o777)
        root_sys.chown("/data/shared", 0, 4000)
        root_sys.chmod("/data/shared", 0o2777)
        alice_sys.write_file("/data/shared/f", b"")
        assert alice_sys.stat("/data/shared/f").kgid == 4000
        alice_sys.mkdir("/data/shared/sub")
        st = alice_sys.stat("/data/shared/sub")
        assert st.kgid == 4000
        assert st.st_mode & 0o2000  # setgid propagates to subdirs


class TestXattrs:
    def test_user_xattr_roundtrip(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        alice_sys.setxattr("/home/alice/f", "user.tag", b"42")
        assert alice_sys.getxattr("/home/alice/f", "user.tag") == b"42"
        assert "user.tag" in alice_sys.listxattr("/home/alice/f")
        alice_sys.removexattr("/home/alice/f", "user.tag")
        assert alice_sys.listxattr("/home/alice/f") == []

    def test_user_xattr_on_nfs_enotsup(self, kernel, alice_sys):
        """§6.1: default NFS lacks user xattrs — what breaks Podman there."""
        root = Syscalls(kernel.init_process)
        root.mkdir_p("/nfs")
        kernel.init_process.mnt_ns.add_mount("/nfs", make_nfs())
        root.chown("/nfs", 1000, 1000)
        alice_sys.write_file("/nfs/f", b"")
        with pytest.raises(KernelError) as exc:
            alice_sys.setxattr("/nfs/f", "user.overlay.opaque", b"y")
        assert exc.value.errno == Errno.ENOTSUP

    def test_security_capability_needs_init_ns(self, root_sys, type3_sys):
        root_sys.write_file("/data/ping", b"")
        root_sys.chmod("/data/ping", 0o755)
        root_sys.setxattr("/data/ping", "security.capability",
                          b"cap_net_raw+ep")
        type3_sys.write_file("/home/alice/ping", b"")
        with pytest.raises(KernelError) as exc:
            type3_sys.setxattr("/home/alice/ping", "security.capability",
                               b"cap_net_raw+ep")
        assert exc.value.errno == Errno.EPERM


class TestExec:
    def test_arch_mismatch_enoexec(self, kernel, root_sys):
        """An x86-64 binary on an aarch64 node: 'Exec format error' — the
        Astra motivation (paper §4.2)."""
        root_sys.write_file("/data/app", b"\x7fELF")
        root_sys.chmod("/data/app", 0o755)
        res = kernel.init_process.mnt_ns.resolve(
            "/data/app", kernel.init_process.cred)
        res.inode.exe_arch = "x86_64"
        kernel.arch = "aarch64"
        with pytest.raises(KernelError) as exc:
            root_sys.prepare_exec("/data/app")
        assert exc.value.errno == Errno.ENOEXEC
        assert int(exc.value.errno) == 8

    def test_noarch_runs_anywhere(self, kernel, root_sys):
        root_sys.write_file("/data/script", b"#!/bin/sh\n")
        root_sys.chmod("/data/script", 0o755)
        kernel.arch = "aarch64"
        node, _ = root_sys.prepare_exec("/data/script")
        assert node.exe_arch == "noarch"

    def test_exec_needs_x_bit(self, alice_sys):
        alice_sys.write_file("/home/alice/tool", b"")
        with pytest.raises(KernelError) as exc:
            alice_sys.prepare_exec("/home/alice/tool")
        assert exc.value.errno == Errno.EACCES


class TestMounts:
    def test_user_mount_requires_cap(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.mount_fs(make_tmpfs(), "/tmp")
        assert exc.value.errno == Errno.EPERM

    def test_container_root_may_mount_in_own_ns(self, type3_sys):
        type3_sys.unshare_mount()
        type3_sys.mount_fs(make_tmpfs(owning_userns=type3_sys.cred.userns),
                           "/tmp")
        type3_sys.write_file("/tmp/inside", b"x")
        assert type3_sys.read_file("/tmp/inside") == b"x"

    def test_readonly_mount_erofs(self, kernel, root_sys):
        root_sys.mkdir_p("/ro")
        kernel.init_process.mnt_ns.add_mount(
            "/ro", make_tmpfs(), flags=MountFlags(read_only=True))
        with pytest.raises(KernelError) as exc:
            root_sys.write_file("/ro/f", b"")
        assert exc.value.errno == Errno.EROFS

    def test_pivot_to(self, type3_sys):
        type3_sys.unshare_mount()
        type3_sys.mkdir_p("/home/alice/imageroot/bin")
        type3_sys.write_file("/home/alice/imageroot/bin/sh", b"")
        type3_sys.pivot_to("/home/alice/imageroot")
        assert type3_sys.exists("/bin/sh")
        assert type3_sys.getcwd() == "/"
