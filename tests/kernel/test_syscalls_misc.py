"""Additional syscall edge cases: errno fidelity for less-travelled paths."""

import pytest

from repro.errors import Errno, KernelError, strerror
from repro.kernel import FileType, MountFlags, Syscalls, make_tmpfs


class TestAccessAndTruncate:
    def test_access_flags(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"data")
        alice_sys.chmod("/home/alice/f", 0o400)
        assert alice_sys.access("/home/alice/f", read=True)
        assert not alice_sys.access("/home/alice/f", write=True)
        assert not alice_sys.access("/nonexistent", read=True)

    def test_truncate(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"0123456789")
        alice_sys.truncate("/home/alice/f", 4)
        assert alice_sys.read_file("/home/alice/f") == b"0123"
        alice_sys.truncate("/home/alice/f")
        assert alice_sys.read_file("/home/alice/f") == b""

    def test_truncate_denied(self, alice_sys, bob_sys):
        alice_sys.write_file("/tmp/f", b"x")
        alice_sys.chmod("/tmp/f", 0o644)
        with pytest.raises(KernelError) as exc:
            bob_sys.truncate("/tmp/f")
        assert exc.value.errno == Errno.EACCES


class TestLinksAndDirs:
    def test_link_to_directory_eperm(self, alice_sys):
        alice_sys.mkdir_p("/home/alice/d")
        with pytest.raises(KernelError) as exc:
            alice_sys.link("/home/alice/d", "/home/alice/d2")
        assert exc.value.errno == Errno.EPERM

    def test_link_across_filesystems_exdev(self, kernel, root_sys):
        root_sys.mkdir_p("/mnt")
        kernel.init_process.mnt_ns.add_mount("/mnt", make_tmpfs())
        root_sys.write_file("/data/f", b"")
        with pytest.raises(KernelError) as exc:
            root_sys.link("/data/f", "/mnt/f")
        assert exc.value.errno == Errno.EXDEV

    def test_rename_across_filesystems_exdev(self, kernel, root_sys):
        root_sys.mkdir_p("/mnt")
        kernel.init_process.mnt_ns.add_mount("/mnt", make_tmpfs())
        root_sys.write_file("/data/f", b"")
        with pytest.raises(KernelError) as exc:
            root_sys.rename("/data/f", "/mnt/f")
        assert exc.value.errno == Errno.EXDEV

    def test_rename_onto_existing_file_replaces(self, alice_sys):
        alice_sys.write_file("/home/alice/a", b"A")
        alice_sys.write_file("/home/alice/b", b"B")
        alice_sys.rename("/home/alice/a", "/home/alice/b")
        assert alice_sys.read_file("/home/alice/b") == b"A"
        assert not alice_sys.exists("/home/alice/a")

    def test_rename_onto_nonempty_dir_enotempty(self, alice_sys):
        alice_sys.mkdir_p("/home/alice/src")
        alice_sys.mkdir_p("/home/alice/dst/full")
        with pytest.raises(KernelError) as exc:
            alice_sys.rename("/home/alice/src", "/home/alice/dst")
        assert exc.value.errno == Errno.ENOTEMPTY

    def test_chdir_to_file_enotdir(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        with pytest.raises(KernelError) as exc:
            alice_sys.chdir("/home/alice/f")
        assert exc.value.errno == Errno.ENOTDIR

    def test_readdir_without_read_permission(self, alice_sys, bob_sys):
        alice_sys.mkdir_p("/home/alice/private")
        alice_sys.chmod("/home/alice/private", 0o711)
        alice_sys.chmod("/home/alice", 0o755)
        with pytest.raises(KernelError) as exc:
            bob_sys.readdir("/home/alice/private")
        assert exc.value.errno == Errno.EACCES

    def test_readlink_on_regular_file_einval(self, alice_sys):
        alice_sys.write_file("/home/alice/f", b"")
        with pytest.raises(KernelError) as exc:
            alice_sys.readlink("/home/alice/f")
        assert exc.value.errno == Errno.EINVAL


class TestExecMisc:
    def test_exec_directory_eisdir(self, alice_sys):
        alice_sys.mkdir_p("/home/alice/d")
        with pytest.raises(KernelError) as exc:
            alice_sys.prepare_exec("/home/alice/d")
        assert exc.value.errno == Errno.EISDIR

    def test_exec_fifo_eacces(self, alice_sys):
        alice_sys.mknod("/home/alice/p", FileType.FIFO, 0o777)
        with pytest.raises(KernelError):
            alice_sys.prepare_exec("/home/alice/p")


class TestUmask:
    def test_umask_roundtrip(self, alice_sys):
        old = alice_sys.umask(0o077)
        assert old == 0o022
        alice_sys.write_file("/home/alice/secret", b"")
        assert alice_sys.stat("/home/alice/secret").st_mode & 0o777 == 0o600
        assert alice_sys.umask(0o022) == 0o077


class TestStrerror:
    def test_known(self):
        assert strerror(Errno.EPERM) == "Operation not permitted"
        assert strerror(22) == "Invalid argument"

    def test_unknown(self):
        assert "Unknown error" in strerror(9999)

    def test_kernel_error_format(self):
        err = KernelError(Errno.EACCES, "/x", syscall="open")
        assert "open" in str(err)
        assert "[Errno 13]" in str(err)
        assert err.strerror == "Permission denied"


class TestReadonlyMountWrites:
    def test_unlink_on_ro_mount(self, kernel, root_sys):
        ro_fs = make_tmpfs()
        Syscalls(kernel.init_process)  # build content via raw fs
        node = ro_fs.alloc(FileType.REG, 0o644, 0, 0, data=b"x")
        ro_fs.link_child(ro_fs.root, "f", node)
        root_sys.mkdir_p("/ro")
        kernel.init_process.mnt_ns.add_mount(
            "/ro", ro_fs, flags=MountFlags(read_only=True))
        with pytest.raises(KernelError) as exc:
            root_sys.unlink("/ro/f")
        assert exc.value.errno == Errno.EROFS
        with pytest.raises(KernelError):
            root_sys.chmod("/ro/f", 0o600)
        with pytest.raises(KernelError):
            root_sys.chown("/ro/f", 1, 1)
