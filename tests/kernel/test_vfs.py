"""VFS tests: inode management, permission evaluation, mode rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import Errno, KernelError
from repro.kernel import (
    Cap,
    Credentials,
    FileType,
    Filesystem,
    IdMap,
    UserNamespace,
    copy_tree,
    make_ext4,
    may_access,
    mode_to_string,
)
from repro.kernel.vfs import capable_wrt_inode, ids_mapped


@pytest.fixture
def fs():
    return make_ext4()


@pytest.fixture
def init_ns():
    return UserNamespace.initial()


def _file(fs, name, mode, uid, gid, parent=None, data=b"x"):
    node = fs.alloc(FileType.REG, mode, uid, gid, data=data)
    fs.link_child(parent or fs.root, name, node)
    return node


class TestInodeManagement:
    def test_root_exists(self, fs):
        assert fs.root.is_dir
        assert fs.root.ino == 1

    def test_link_and_lookup(self, fs):
        node = _file(fs, "hello", 0o644, 0, 0)
        assert fs.lookup(fs.root, "hello") is node
        assert node.nlink == 1

    def test_duplicate_name_rejected(self, fs):
        _file(fs, "a", 0o644, 0, 0)
        with pytest.raises(KernelError) as exc:
            _file(fs, "a", 0o644, 0, 0)
        assert exc.value.errno == Errno.EEXIST

    def test_bad_names_rejected(self, fs):
        node = fs.alloc(FileType.REG, 0o644, 0, 0)
        for bad in ("", ".", "..", "a/b"):
            with pytest.raises(KernelError):
                fs.link_child(fs.root, bad, node)

    def test_unlink_drops_inode(self, fs):
        node = _file(fs, "f", 0o644, 0, 0)
        fs.unlink_child(fs.root, "f")
        with pytest.raises(KernelError):
            fs.inode(node.ino)

    def test_hard_link_keeps_inode(self, fs):
        node = _file(fs, "f", 0o644, 0, 0)
        fs.link_child(fs.root, "g", node)
        assert node.nlink == 2
        fs.unlink_child(fs.root, "f")
        assert fs.inode(node.ino) is node

    def test_dir_nlink_accounting(self, fs):
        sub = fs.alloc(FileType.DIR, 0o755, 0, 0)
        fs.link_child(fs.root, "sub", sub)
        assert fs.root.nlink == 3  # self + "." + sub's ".."
        assert sub.nlink == 2

    def test_iter_tree_and_sizes(self, fs):
        d = fs.alloc(FileType.DIR, 0o755, 0, 0)
        fs.link_child(fs.root, "d", d)
        _file(fs, "a", 0o644, 0, 0, data=b"12345")
        _file(fs, "b", 0o644, 0, 0, parent=d, data=b"123")
        paths = [p for p, _ in fs.iter_tree()]
        assert paths == ["a", "d", "d/b"]
        assert fs.total_bytes() == 8

    def test_readonly_fs_rejects_alloc(self):
        from repro.kernel import FsFeatures
        ro = Filesystem("ext4", features=FsFeatures(read_only=True))
        with pytest.raises(KernelError) as exc:
            ro.alloc(FileType.REG, 0o644, 0, 0)
        assert exc.value.errno == Errno.EROFS


class TestPermissionEvaluation:
    def test_owner_bits_govern(self, fs, init_ns):
        alice = Credentials.for_user(1000, 1000, userns=init_ns)
        node = _file(fs, "f", 0o600, 1000, 1000)
        assert may_access(alice, node, read=True, write=True)
        assert not may_access(alice, node, execute=True)

    def test_group_bits(self, fs, init_ns):
        bob = Credentials.for_user(1001, 1001, frozenset({2000}), init_ns)
        node = _file(fs, "f", 0o640, 1000, 2000)
        assert may_access(bob, node, read=True)
        assert not may_access(bob, node, write=True)

    def test_other_bits(self, fs, init_ns):
        eve = Credentials.for_user(1002, 1002, userns=init_ns)
        node = _file(fs, "f", 0o604, 1000, 2000)
        assert may_access(eve, node, read=True)
        assert not may_access(eve, node, write=True)

    def test_first_match_governs_group_deny(self, fs, init_ns):
        """The §2.1.4 scenario: rwx---r-x denies group members what 'other'
        can do — managers can NOT execute /bin/reboot, others can."""
        reboot = _file(fs, "reboot", 0o705, 0, 2000)  # rwx---r-x
        manager = Credentials.for_user(1000, 1000, frozenset({2000}), init_ns)
        other = Credentials.for_user(1001, 1001, userns=init_ns)
        assert not may_access(manager, reboot, execute=True)
        assert may_access(other, reboot, execute=True)

    def test_dropping_group_flips_to_other(self, fs, init_ns):
        """...and a manager who drops the group regains access (the trap)."""
        reboot = _file(fs, "reboot", 0o705, 0, 2000)
        manager = Credentials.for_user(1000, 1000, frozenset({2000}), init_ns)
        assert not may_access(manager, reboot, execute=True)
        manager.groups = frozenset()
        assert may_access(manager, reboot, execute=True)

    def test_root_dac_override(self, fs, init_ns):
        root = Credentials.root(init_ns)
        node = _file(fs, "f", 0o000, 1000, 1000)
        assert may_access(root, node, read=True, write=True)

    def test_root_needs_one_x_bit_to_exec(self, fs, init_ns):
        root = Credentials.root(init_ns)
        node = _file(fs, "f", 0o600, 1000, 1000)
        assert not may_access(root, node, execute=True)
        node.mode = 0o601
        assert may_access(root, node, execute=True)

    def test_container_root_cannot_override_unmapped_inode(self, fs, init_ns):
        """capable_wrt_inode_uidgid: caps only apply when inode IDs are
        mapped in the caller's namespace (the Figure 5 mechanism)."""
        ns = UserNamespace(init_ns, 1000, 1000)
        ns.set_uid_map(IdMap.single(0, 1000), writer_euid=1000,
                       writer_privileged=False)
        ns.deny_setgroups()
        ns.set_gid_map(IdMap.single(0, 1000), writer_egid=1000,
                       writer_privileged=False)
        cont_root = Credentials.root(ns)
        cont_root.ruid = cont_root.euid = cont_root.suid = cont_root.fsuid = 1000
        cont_root.rgid = cont_root.egid = cont_root.sgid = cont_root.fsgid = 1000
        owned_by_host_root = _file(fs, "p", 0o600, 0, 0)  # unmapped in ns
        owned_by_user = _file(fs, "q", 0o600, 1000, 1000)  # mapped (as 0)
        assert not ids_mapped(cont_root, owned_by_host_root)
        assert ids_mapped(cont_root, owned_by_user)
        assert not may_access(cont_root, owned_by_host_root, write=True)
        assert may_access(cont_root, owned_by_user, write=True)
        assert not capable_wrt_inode(cont_root, owned_by_host_root, Cap.CHOWN)
        assert capable_wrt_inode(cont_root, owned_by_user, Cap.CHOWN)


class TestModeString:
    @pytest.mark.parametrize(
        "ftype,mode,expect",
        [
            (FileType.REG, 0o644, "-rw-r--r--"),
            (FileType.DIR, 0o755, "drwxr-xr-x"),
            (FileType.SYMLINK, 0o777, "lrwxrwxrwx"),
            (FileType.CHR, 0o640, "crw-r-----"),
            (FileType.REG, 0o4755, "-rwsr-xr-x"),
            (FileType.REG, 0o4644, "-rwSr--r--"),
            (FileType.REG, 0o2755, "-rwxr-sr-x"),
            (FileType.DIR, 0o1777, "drwxrwxrwt"),
        ],
    )
    def test_render(self, ftype, mode, expect):
        assert mode_to_string(ftype, mode) == expect


class TestCopyTree:
    def test_copy_preserves_metadata(self, fs):
        d = fs.alloc(FileType.DIR, 0o750, 7, 8)
        fs.link_child(fs.root, "src", d)
        f = fs.alloc(FileType.REG, 0o4711, 25, 25, data=b"secret")
        f.xattrs["user.tag"] = b"v"
        fs.link_child(d, "f", f)
        dst = make_ext4()
        copy_tree(fs, d.ino, dst, dst.root_ino, "dup")
        got = dst.lookup(dst.root, "dup")
        assert got.mode == 0o750 and (got.uid, got.gid) == (7, 8)
        inner = dst.lookup(got, "f")
        assert inner.data == b"secret"
        assert inner.mode == 0o4711
        assert inner.xattrs == {"user.tag": b"v"}

    def test_copy_is_deep(self, fs):
        d = fs.alloc(FileType.DIR, 0o755, 0, 0)
        fs.link_child(fs.root, "src", d)
        f = fs.alloc(FileType.REG, 0o644, 0, 0, data=b"a")
        fs.link_child(d, "f", f)
        dst = make_ext4()
        copy_tree(fs, d.ino, dst, dst.root_ino, "dup")
        f.data = b"mutated"
        inner = dst.lookup(dst.lookup(dst.root, "dup"), "f")
        assert inner.data == b"a"


# -- property: permission check is a pure function of class bits ------------------

@given(mode=st.integers(0, 0o777), want=st.sampled_from(["r", "w", "x"]))
def test_permission_matches_class_bits(mode, want):
    fs = make_ext4()
    ns = UserNamespace.initial()
    node = fs.alloc(FileType.REG, mode, 1000, 2000, data=b"")
    owner = Credentials.for_user(1000, 5000, userns=ns)
    member = Credentials.for_user(1001, 2000, userns=ns)
    other = Credentials.for_user(1002, 5001, userns=ns)
    kw = {{"r": "read", "w": "write", "x": "execute"}[want]: True}
    bit = {"r": 4, "w": 2, "x": 1}[want]
    assert may_access(owner, node, **kw) == bool((mode >> 6) & bit)
    assert may_access(member, node, **kw) == bool((mode >> 3) & bit)
    assert may_access(other, node, **kw) == bool(mode & bit)
