"""Property-based tests for ID maps and user namespaces (paper §2.1).

Randomized cases are generated with a fixed-seed ``random.Random`` so runs
are deterministic; each failure report includes the case index, which is
enough to reproduce it locally.
"""

import random

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import IdMap, IdMapEntry, Syscalls

SEED = 0x5C21  # SC'21
CASES = 200


def random_idmap(rng: random.Random, *, max_entries: int = 5) -> IdMap:
    """A valid random map: disjoint inside and outside ranges."""
    n = rng.randint(1, max_entries)

    def disjoint_ranges():
        starts = sorted(rng.sample(range(0, 1 << 20), n))
        ranges = []
        for i, s in enumerate(starts):
            limit = (starts[i + 1] - s) if i + 1 < n else 1 << 10
            ranges.append((s, rng.randint(1, max(1, min(limit, 1 << 10)))))
        return ranges

    inside = disjoint_ranges()
    outside = disjoint_ranges()
    rng.shuffle(outside)
    return IdMap([
        IdMapEntry(ins, outs, min(icount, ocount))
        for (ins, icount), (outs, ocount) in zip(inside, outside)])


class TestRoundTripProperties:
    """map ∘ unmap = identity on the mapped set, both directions."""

    def test_inside_outside_round_trip(self):
        rng = random.Random(SEED)
        for case in range(CASES):
            m = random_idmap(rng)
            for e in m:
                # boundaries plus a random interior point of every range
                samples = {e.inside_start, e.inside_end,
                           rng.randint(e.inside_start, e.inside_end)}
                for ns_id in samples:
                    host = m.to_outside(ns_id)
                    assert host is not None, (case, ns_id)
                    assert m.to_inside(host) == ns_id, (case, ns_id)

    def test_outside_inside_round_trip(self):
        rng = random.Random(SEED + 1)
        for case in range(CASES):
            m = random_idmap(rng)
            for e in m:
                samples = {e.outside_start, e.outside_end,
                           rng.randint(e.outside_start, e.outside_end)}
                for host in samples:
                    ns_id = m.to_inside(host)
                    assert ns_id is not None, (case, host)
                    assert m.to_outside(ns_id) == host, (case, host)

    def test_unmapped_ids_translate_to_none(self):
        rng = random.Random(SEED + 2)
        for case in range(CASES):
            m = random_idmap(rng)
            inside_ids = {i for e in m
                          for i in range(e.inside_start, e.inside_end + 1)}
            outside_ids = {i for e in m
                           for i in range(e.outside_start, e.outside_end + 1)}
            for _ in range(10):
                probe = rng.randint(0, 1 << 21)
                if probe not in inside_ids:
                    assert m.to_outside(probe) is None, (case, probe)
                if probe not in outside_ids:
                    assert m.to_inside(probe) is None, (case, probe)

    def test_injective_no_squashing(self):
        """§2.1.1: 'there is never squashing of multiple IDs onto one'."""
        rng = random.Random(SEED + 3)
        for case in range(CASES):
            m = random_idmap(rng)
            seen_hosts = set()
            for e in m:
                for ns_id in {e.inside_start, e.inside_end}:
                    host = m.to_outside(ns_id)
                    assert host not in seen_hosts, (case, ns_id)
                    seen_hosts.add(host)

    def test_parse_format_round_trip(self):
        rng = random.Random(SEED + 4)
        for _ in range(CASES):
            m = random_idmap(rng)
            assert IdMap.parse(m.format()) == m


class TestOverlapRejection:
    def test_overlapping_inside_ranges_einval(self):
        rng = random.Random(SEED + 5)
        for case in range(CASES):
            m = random_idmap(rng)
            victim = rng.choice(m.entries)
            # an entry whose inside range intersects victim's, but with an
            # outside range far away from every existing one
            clash = IdMapEntry(
                rng.randint(victim.inside_start, victim.inside_end),
                (1 << 22) + case * (1 << 11), 1)
            with pytest.raises(KernelError) as exc:
                IdMap(list(m.entries) + [clash])
            assert exc.value.errno == Errno.EINVAL, case

    def test_overlapping_outside_ranges_einval(self):
        rng = random.Random(SEED + 6)
        for case in range(CASES):
            m = random_idmap(rng)
            victim = rng.choice(m.entries)
            clash = IdMapEntry(
                (1 << 22) + case * (1 << 11),
                rng.randint(victim.outside_start, victim.outside_end), 1)
            with pytest.raises(KernelError) as exc:
                IdMap(list(m.entries) + [clash])
            assert exc.value.errno == Errno.EINVAL, case

    def test_empty_map_einval(self):
        with pytest.raises(KernelError) as exc:
            IdMap([])
        assert exc.value.errno == Errno.EINVAL


class TestFourMapCases:
    """The four translation cases of §2.1: {inside, outside} ID that
    {is, is not} covered by the map."""

    # Figure 1's privileged map: root -> alice, 1.. -> subordinate range
    MAP = IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)])

    def test_mapped_inside_id(self):
        assert self.MAP.to_outside(0) == 1000        # container root = alice
        assert self.MAP.to_outside(25) == 200024     # subordinate

    def test_unmapped_inside_id(self):
        assert self.MAP.to_outside(70000) is None    # beyond the 65536 IDs

    def test_mapped_outside_id(self):
        assert self.MAP.to_inside(1000) == 0
        assert self.MAP.to_inside(200024) == 25

    def test_unmapped_outside_id(self):
        # e.g. bob's files appear as nobody inside (paper §2.1.2)
        assert self.MAP.to_inside(1001) is None


class TestSetgroupsDenyTrap:
    """§2.1.4 / CVE-2018-7169: unprivileged gid_map requires setgroups
    denied *first*, and the denial is then permanent."""

    def test_gid_map_before_deny_eperm(self, alice):
        sys = Syscalls(alice.fork(comm="trap"))
        sys.unshare_user()
        sys.write_uid_map([IdMapEntry(0, 1000, 1)])
        with pytest.raises(KernelError) as exc:
            sys.write_gid_map([IdMapEntry(0, 1000, 1)])
        assert exc.value.errno == Errno.EPERM

    def test_deny_then_gid_map_ok(self, alice):
        sys = Syscalls(alice.fork(comm="trap"))
        sys.unshare_user()
        sys.write_uid_map([IdMapEntry(0, 1000, 1)])
        sys.deny_setgroups()
        sys.write_gid_map([IdMapEntry(0, 1000, 1)])
        assert sys.cred.userns.gid_map is not None

    def test_deny_is_immutable_after_gid_map(self, type3_sys):
        with pytest.raises(KernelError) as exc:
            type3_sys.proc.cred.userns.deny_setgroups()
        assert exc.value.errno == Errno.EPERM

    def test_setgroups_denied_in_type3(self, type3_sys):
        """The group-drop attack stays closed: even container 'root' cannot
        call setgroups(2) once the namespace says deny."""
        with pytest.raises(KernelError) as exc:
            type3_sys.setgroups([0])
        assert exc.value.errno == Errno.EPERM

    def test_random_unprivileged_multi_entry_maps_rejected(self, alice):
        """Unprivileged writers may map exactly one ID, whatever the map."""
        rng = random.Random(SEED + 7)
        for case in range(25):
            sys = Syscalls(alice.fork(comm=f"multi{case}"))
            sys.unshare_user()
            entries = [IdMapEntry(0, 1000, 1),
                       IdMapEntry(1, 200000 + case * (1 << 17),
                                  rng.randint(2, 1 << 16))]
            with pytest.raises(KernelError) as exc:
                sys.write_uid_map(entries)
            assert exc.value.errno == Errno.EPERM, case
