"""Shared fixtures: a host kernel with users and the three container types
of paper §2.2."""

import pytest

from repro.kernel import (
    Credentials,
    FileType,
    IdMapEntry,
    Kernel,
    Syscalls,
    make_ext4,
)


@pytest.fixture
def kernel():
    """A host with /, /etc, /home/alice, /home/bob, /tmp, /data."""
    k = Kernel(make_ext4(), hostname="host")
    sys0 = Syscalls(k.init_process)
    sys0.mkdir("/etc", 0o755)
    sys0.mkdir("/home", 0o755)
    sys0.mkdir("/home/alice", 0o777)
    sys0.chown("/home/alice", 1000, 1000)
    sys0.chmod("/home/alice", 0o755)
    sys0.mkdir("/home/bob", 0o777)
    sys0.chown("/home/bob", 1001, 1001)
    sys0.chmod("/home/bob", 0o755)
    sys0.mkdir("/tmp", 0o777)
    sys0.chmod("/tmp", 0o1777)
    sys0.mkdir("/data", 0o777)
    return k


@pytest.fixture
def root_sys(kernel):
    return Syscalls(kernel.init_process)


@pytest.fixture
def alice(kernel):
    return kernel.login(1000, 1000, user="alice", home="/home/alice")


@pytest.fixture
def alice_sys(alice):
    return Syscalls(alice)


@pytest.fixture
def bob_sys(kernel):
    bob = kernel.login(1001, 1001, user="bob", home="/home/bob")
    return Syscalls(bob)


@pytest.fixture
def type3_sys(kernel, alice):
    """Type III: alice in an unprivileged userns mapped to container root."""
    proc = alice.fork(comm="type3")
    sys = Syscalls(proc)
    sys.setup_single_id_userns()
    return sys


@pytest.fixture
def type2_sys(kernel, alice):
    """Type II: alice in a privileged-helper userns (0->1000, 1..->200000..),
    like Figure 1 / Figure 4."""
    proc = alice.fork(comm="type2")
    sys = Syscalls(proc)
    sys.unshare_user()
    helper = Syscalls(kernel.init_process.fork(comm="newuidmap"))
    helper.write_uid_map(
        [IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)], target=proc
    )
    helper.write_gid_map(
        [IdMapEntry(0, 1000, 1), IdMapEntry(1, 300000, 65535)], target=proc
    )
    return sys
