"""Regression tests for the errno-convention audit of kernel/syscalls.py.

Wiring the tracer exposed error paths that raised without naming the
failing syscall (so strace-style reports could not attribute them) or
raised the wrong errno outright.  Each test here pins one fixed path:
the exception must carry both the right ``errno`` and the right
``syscall`` tag, exactly like the kernel's own error reporting.
"""

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import IdMapEntry, MountFlags, Syscalls, make_ext4


@pytest.fixture
def ro_root(kernel):
    """Root's view of a read-only fs at /data containing one file, /data/f."""
    root = Syscalls(kernel.init_process)
    fs = make_ext4()
    root.mkdir("/mnt", 0o755)
    root.mount_fs(fs, "/mnt")
    root.write_file("/mnt/f", b"payload")
    root.umount("/mnt")
    root.mount_fs(fs, "/data", MountFlags(read_only=True))
    return root


class TestReadOnlyFilesystemTags:
    """EROFS failures must name the syscall that hit them."""

    def test_write_file_erofs_named_open(self, ro_root):
        with pytest.raises(KernelError) as exc:
            ro_root.write_file("/data/x", b"hi")
        assert exc.value.errno == Errno.EROFS
        assert exc.value.syscall == "open"

    def test_mkdir_erofs(self, ro_root):
        with pytest.raises(KernelError) as exc:
            ro_root.mkdir("/data/d", 0o755)
        assert exc.value.errno == Errno.EROFS
        assert exc.value.syscall == "mkdir"

    def test_unlink_rmdir_rename_erofs(self, ro_root):
        for call, args in [("unlink", ("/data/f",)),
                           ("rmdir", ("/data/f",)),
                           ("rename", ("/data/f", "/data/g"))]:
            with pytest.raises(KernelError) as exc:
                getattr(ro_root, call)(*args)
            assert exc.value.errno == Errno.EROFS, call
            assert exc.value.syscall == call, call

    def test_chown_chmod_truncate_erofs(self, ro_root):
        for call, args in [("chown", ("/data/f", 0, 0)),
                           ("chmod", ("/data/f", 0o700)),
                           ("truncate", ("/data/f", 0))]:
            with pytest.raises(KernelError) as exc:
                getattr(ro_root, call)(*args)
            assert exc.value.errno == Errno.EROFS, call
            assert exc.value.syscall == call, call

    def test_setxattr_removexattr_erofs(self, ro_root):
        """removexattr previously skipped the read-only check entirely."""
        for call, args in [("setxattr", ("/data/f", "user.k", b"v")),
                           ("removexattr", ("/data/f", "user.k"))]:
            with pytest.raises(KernelError) as exc:
                getattr(ro_root, call)(*args)
            assert exc.value.errno == Errno.EROFS, call
            assert exc.value.syscall == call, call


class TestTruncateIsdir:
    def test_truncate_directory_eisdir(self, root_sys):
        """truncate(2) on a directory is EISDIR, not a silent data wipe."""
        root_sys.mkdir("/victim", 0o755)
        with pytest.raises(KernelError) as exc:
            root_sys.truncate("/victim", 0)
        assert exc.value.errno == Errno.EISDIR
        assert exc.value.syscall == "truncate"


class TestIdentitySyscallTags:
    def test_setreuid_unmapped_einval_named(self, type3_sys):
        """setreuid failures used to surface under the delegate's name."""
        with pytest.raises(KernelError) as exc:
            type3_sys.setreuid(100, 100)  # 100 unmapped in a single-ID ns
        assert exc.value.errno == Errno.EINVAL
        assert exc.value.syscall == "setreuid"

    def test_setreuid_eperm_named(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.setreuid(0, 0)
        assert exc.value.errno == Errno.EPERM
        assert exc.value.syscall == "setreuid"

    def test_initial_ns_uid_map_eperm_named(self, root_sys):
        with pytest.raises(KernelError) as exc:
            root_sys.write_uid_map([IdMapEntry(0, 0, 1)])
        assert exc.value.errno == Errno.EPERM
        assert exc.value.syscall == "write_uid_map"

    def test_initial_ns_gid_map_eperm_named(self, root_sys):
        with pytest.raises(KernelError) as exc:
            root_sys.write_gid_map([IdMapEntry(0, 0, 1)])
        assert exc.value.errno == Errno.EPERM
        assert exc.value.syscall == "write_gid_map"


class TestMountSyscallTags:
    def test_pivot_root_without_cap_eperm_named(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.pivot_to("/tmp")
        assert exc.value.errno == Errno.EPERM
        assert exc.value.syscall == "pivot_root"

    def test_pivot_root_to_file_enotdir_named(self, root_sys):
        root_sys.write_file("/tmp/f", b"")
        with pytest.raises(KernelError) as exc:
            root_sys.pivot_to("/tmp/f")
        assert exc.value.errno == Errno.ENOTDIR
        assert exc.value.syscall == "pivot_root"

    def test_umount_without_cap_eperm_named(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.umount("/tmp")
        assert exc.value.errno == Errno.EPERM
        assert exc.value.syscall == "umount"
