"""Mount namespace and path resolution tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import Errno, KernelError
from repro.kernel import (
    Credentials,
    FileType,
    MountNamespace,
    UserNamespace,
    make_ext4,
    make_tmpfs,
    normpath,
)


@pytest.fixture
def ns():
    return UserNamespace.initial()


@pytest.fixture
def root_cred(ns):
    return Credentials.root(ns)


@pytest.fixture
def world(ns):
    """An ext4 root with /home/alice, /etc/hosts, symlinks and a tmpfs /tmp."""
    fs = make_ext4()
    home = fs.alloc(FileType.DIR, 0o755, 0, 0)
    fs.link_child(fs.root, "home", home)
    alice = fs.alloc(FileType.DIR, 0o700, 1000, 1000)
    fs.link_child(home, "alice", alice)
    etc = fs.alloc(FileType.DIR, 0o755, 0, 0)
    fs.link_child(fs.root, "etc", etc)
    hosts = fs.alloc(FileType.REG, 0o644, 0, 0, data=b"127.0.0.1 localhost\n")
    fs.link_child(etc, "hosts", hosts)
    lnk = fs.alloc(FileType.SYMLINK, 0o777, 0, 0, target="/etc/hosts")
    fs.link_child(fs.root, "hosts-link", lnk)
    rel = fs.alloc(FileType.SYMLINK, 0o777, 0, 0, target="hosts")
    fs.link_child(etc, "hosts-rel", rel)
    tmpdir = fs.alloc(FileType.DIR, 0o1777, 0, 0)
    fs.link_child(fs.root, "tmp", tmpdir)
    mnt = MountNamespace(fs, owning_userns=UserNamespace.initial())
    mnt.add_mount("/tmp", make_tmpfs())
    return fs, mnt


class TestNormpath:
    @pytest.mark.parametrize(
        "raw,canon",
        [
            ("/", "/"),
            ("//", "/"),
            ("/a//b", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/../..", "/"),
            ("/a/b/../../c", "/c"),
        ],
    )
    def test_cases(self, raw, canon):
        assert normpath(raw) == canon

    def test_relative_rejected(self):
        with pytest.raises(KernelError):
            normpath("a/b")


class TestResolution:
    def test_simple_walk(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/etc/hosts", root_cred)
        assert res.inode.data.startswith(b"127.0.0.1")
        assert res.path == "/etc/hosts"

    def test_enoent(self, world, root_cred):
        _, mnt = world
        with pytest.raises(KernelError) as exc:
            mnt.resolve("/etc/nope", root_cred)
        assert exc.value.errno == Errno.ENOENT

    def test_enotdir(self, world, root_cred):
        _, mnt = world
        with pytest.raises(KernelError) as exc:
            mnt.resolve("/etc/hosts/deeper", root_cred)
        assert exc.value.errno == Errno.ENOTDIR

    def test_search_permission_enforced(self, world, ns):
        _, mnt = world
        bob = Credentials.for_user(1001, 1001, userns=ns)
        with pytest.raises(KernelError) as exc:
            mnt.resolve("/home/alice/secret", bob)
        assert exc.value.errno == Errno.EACCES

    def test_absolute_symlink(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/hosts-link", root_cred)
        assert res.path == "/etc/hosts"

    def test_relative_symlink(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/etc/hosts-rel", root_cred)
        assert res.path == "/etc/hosts"

    def test_nofollow_final(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/hosts-link", root_cred, follow=False)
        assert res.inode.ftype is FileType.SYMLINK

    def test_symlink_loop_eloop(self, world, root_cred):
        fs, mnt = world
        a = fs.alloc(FileType.SYMLINK, 0o777, 0, 0, target="/loop-b")
        fs.link_child(fs.root, "loop-a", a)
        b = fs.alloc(FileType.SYMLINK, 0o777, 0, 0, target="/loop-a")
        fs.link_child(fs.root, "loop-b", b)
        with pytest.raises(KernelError) as exc:
            mnt.resolve("/loop-a", root_cred)
        assert exc.value.errno == Errno.ELOOP

    def test_dotdot(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/etc/../etc/hosts", root_cred)
        assert res.path == "/etc/hosts"

    def test_dotdot_above_root_stays_at_root(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/../../etc/hosts", root_cred)
        assert res.path == "/etc/hosts"

    def test_relative_path_uses_cwd(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("hosts", root_cred, cwd="/etc")
        assert res.path == "/etc/hosts"

    def test_mount_crossing(self, world, root_cred):
        _, mnt = world
        res = mnt.resolve("/tmp", root_cred)
        assert res.fs.fstype == "tmpfs"

    def test_mount_hides_underlying_tree(self, world, root_cred):
        fs, mnt = world
        # Place a file in the underlying /tmp, then verify the tmpfs wins.
        tmp_underlying = fs.lookup(fs.root, "tmp")
        f = fs.alloc(FileType.REG, 0o644, 0, 0, data=b"hidden")
        fs.link_child(tmp_underlying, "under", f)
        with pytest.raises(KernelError):
            mnt.resolve("/tmp/under", root_cred)

    def test_resolve_parent(self, world, root_cred):
        _, mnt = world
        rp = mnt.resolve_parent("/etc/newfile", root_cred)
        assert rp.name == "newfile"
        assert rp.dir_inode.is_dir

    def test_clone_is_independent(self, world, root_cred):
        _, mnt = world
        dup = mnt.clone()
        dup.add_mount("/home", make_tmpfs())
        assert mnt.resolve("/home/alice", root_cred)  # original unaffected
        with pytest.raises(KernelError):
            dup.resolve("/home/alice", root_cred)

    def test_set_root_pivots(self, world, root_cred):
        fs, mnt = world
        mnt.set_root(fs, fs.lookup(fs.root, "etc").ino)
        res = mnt.resolve("/hosts", root_cred)
        assert res.inode.data.startswith(b"127.0.0.1")

    def test_umount(self, world, root_cred):
        _, mnt = world
        mnt.remove_mount("/tmp")
        res = mnt.resolve("/tmp", root_cred)
        assert res.fs.fstype == "ext4"

    def test_umount_root_rejected(self, world):
        _, mnt = world
        with pytest.raises(KernelError):
            mnt.remove_mount("/")

    def test_nosuid_implied_for_userns_mounts(self, world, ns):
        _, mnt = world
        child = UserNamespace(ns, 1000, 1000)
        m = mnt.add_mount("/home", make_tmpfs(), owning_userns=child)
        assert m.effective_nosuid
        m2 = mnt.mounts["/tmp"]
        assert not m2.effective_nosuid


# -- property: normpath idempotence & shape ---------------------------------------

_seg = st.sampled_from(["a", "b", "cc", ".", "..", ""])


@given(st.lists(_seg, max_size=8))
def test_normpath_idempotent(segs):
    p = "/" + "/".join(segs)
    once = normpath(p)
    assert normpath(once) == once
    assert once.startswith("/")
    assert ".." not in once.split("/")
    assert "." not in once.split("/")[1:]
