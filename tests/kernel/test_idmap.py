"""Unit tests for UID/GID maps (paper §2.1.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import Errno, KernelError
from repro.kernel import ID_MAX, IdMap, IdMapEntry


class TestIdMapEntry:
    def test_basic_ranges(self):
        e = IdMapEntry(0, 200000, 65536)
        assert e.inside_end == 65535
        assert e.outside_end == 265535

    def test_contains(self):
        e = IdMapEntry(1, 100000, 10)
        assert e.contains_inside(1) and e.contains_inside(10)
        assert not e.contains_inside(0) and not e.contains_inside(11)
        assert e.contains_outside(100000) and e.contains_outside(100009)
        assert not e.contains_outside(99999)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            IdMapEntry(0, 0, 0)
        with pytest.raises(ValueError):
            IdMapEntry(0, 0, -3)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            IdMapEntry(-1, 0, 1)
        with pytest.raises(ValueError):
            IdMapEntry(ID_MAX, 0, 2)  # overflows 32-bit space

    def test_format_is_proc_columns(self):
        line = IdMapEntry(0, 1000, 1).format()
        assert line.split() == ["0", "1000", "1"]


class TestIdMap:
    def test_translation_both_directions(self):
        m = IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)])
        assert m.to_outside(0) == 1000
        assert m.to_outside(1) == 200000
        assert m.to_outside(65535) == 265534
        assert m.to_inside(1000) == 0
        assert m.to_inside(200007) == 8

    def test_unmapped_returns_none(self):
        m = IdMap.single(0, 1000)
        assert m.to_outside(1) is None
        assert m.to_inside(0) is None
        assert m.to_inside(999) is None

    def test_overlapping_inside_rejected(self):
        with pytest.raises(KernelError) as exc:
            IdMap([IdMapEntry(0, 1000, 10), IdMapEntry(5, 50000, 10)])
        assert exc.value.errno == Errno.EINVAL

    def test_overlapping_outside_rejected(self):
        with pytest.raises(KernelError) as exc:
            IdMap([IdMapEntry(0, 1000, 10), IdMapEntry(100, 1005, 10)])
        assert exc.value.errno == Errno.EINVAL

    def test_empty_map_rejected(self):
        with pytest.raises(KernelError):
            IdMap([])

    def test_entry_count_limit(self):
        entries = [IdMapEntry(i * 2, 100000 + i * 2, 1) for i in range(341)]
        with pytest.raises(KernelError):
            IdMap(entries)

    def test_identity_map_covers_everything(self):
        m = IdMap.identity()
        assert m.to_outside(0) == 0
        assert m.to_outside(ID_MAX) == ID_MAX
        assert m.to_inside(12345) == 12345

    def test_parse_round_trip(self):
        m = IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)])
        again = IdMap.parse(m.format())
        assert again == m

    def test_parse_rejects_garbage(self):
        with pytest.raises(KernelError):
            IdMap.parse("0 1000\n")
        with pytest.raises(KernelError):
            IdMap.parse("a b c\n")

    def test_is_single(self):
        assert IdMap.single(0, 1000).is_single()
        assert not IdMap([IdMapEntry(0, 1000, 2)]).is_single()

    def test_mapped_count(self):
        m = IdMap([IdMapEntry(0, 1000, 1), IdMapEntry(1, 200000, 65535)])
        assert m.mapped_count() == 65536


# -- property-based: the one-to-one guarantee of §2.1.1 --------------------------

_entry = st.builds(
    IdMapEntry,
    inside_start=st.integers(0, 10**6),
    outside_start=st.integers(0, 10**6),
    count=st.integers(1, 10**5),
)


def _disjoint(entries):
    try:
        return IdMap(entries)
    except KernelError:
        return None


@given(st.lists(_entry, min_size=1, max_size=6))
def test_roundtrip_identity_on_mapped_ranges(entries):
    """inside -> outside -> inside is the identity wherever defined."""
    m = _disjoint(entries)
    if m is None:
        return
    for e in m.entries:
        for ns_id in (e.inside_start, e.inside_end,
                      (e.inside_start + e.inside_end) // 2):
            out = m.to_outside(ns_id)
            assert out is not None
            assert m.to_inside(out) == ns_id


@given(st.lists(_entry, min_size=1, max_size=6))
def test_no_squashing(entries):
    """Distinct inside IDs never map to the same outside ID."""
    m = _disjoint(entries)
    if m is None:
        return
    seen = {}
    for e in m.entries:
        probes = {e.inside_start, e.inside_end}
        for ns_id in probes:
            out = m.to_outside(ns_id)
            assert out not in seen or seen[out] == ns_id
            seen[out] = ns_id


@given(st.lists(_entry, min_size=1, max_size=6))
def test_format_parse_roundtrip(entries):
    m = _disjoint(entries)
    if m is None:
        return
    assert IdMap.parse(m.format()) == m
