"""UTS namespace tests: per-container hostnames."""

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import Syscalls


class TestUts:
    def test_default_is_kernel_hostname(self, kernel, alice_sys):
        assert alice_sys.gethostname() == "host"

    def test_host_root_may_sethostname(self, root_sys, kernel):
        root_sys.sethostname("renamed")
        assert kernel.hostname == "renamed"

    def test_user_may_not_sethostname(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.sethostname("mine")
        assert exc.value.errno == Errno.EPERM

    def test_unshare_requires_cap(self, alice_sys):
        with pytest.raises(KernelError):
            alice_sys.unshare_uts()

    def test_container_root_gets_private_hostname(self, type3_sys, kernel):
        type3_sys.unshare_uts()
        type3_sys.sethostname("container1")
        assert type3_sys.gethostname() == "container1"
        assert kernel.hostname == "host"  # host unaffected

    def test_children_inherit_uts(self, type3_sys):
        type3_sys.unshare_uts()
        type3_sys.sethostname("ctr")
        child = Syscalls(type3_sys.proc.fork())
        assert child.gethostname() == "ctr"

    def test_fork_before_unshare_not_affected(self, type3_sys, kernel):
        sibling = Syscalls(type3_sys.proc.fork())
        type3_sys.unshare_uts()
        type3_sys.sethostname("ctr")
        assert sibling.gethostname() == "host"

    def test_hostname_length_limit(self, type3_sys):
        type3_sys.unshare_uts()
        with pytest.raises(KernelError) as exc:
            type3_sys.sethostname("x" * 65)
        assert exc.value.errno == Errno.EINVAL


class TestContainerHostname:
    def test_podman_style_hostname(self, kernel, alice):
        from repro.containers import enter_container
        from repro.kernel import Syscalls as S
        root = S(kernel.init_process)
        root.mkdir_p("/img/proc")
        root.mkdir_p("/img/dev")
        root.chown("/img", 1000, 1000)
        root.chown("/img/proc", 1000, 1000)
        root.chown("/img/dev", 1000, 1000)
        ctx = enter_container(alice, "/img", "type3",
                              hostname="f00dcafe")
        assert ctx.sys.gethostname() == "f00dcafe"
        assert ctx.sys.read_file(
            "/proc/sys/kernel/hostname").decode().strip() == "f00dcafe"

    def test_chrun_keeps_host_hostname(self, kernel, alice):
        from repro.containers import enter_container
        from repro.kernel import Syscalls as S
        root = S(kernel.init_process)
        root.mkdir_p("/img2")
        root.chown("/img2", 1000, 1000)
        ctx = enter_container(alice, "/img2", "type3")
        assert ctx.sys.gethostname() == "host"
