"""PID namespace tests and the §3.1 process-tracking property."""

import pytest

from repro.kernel import Syscalls


class TestPidNamespace:
    def test_default_ns_pid_is_host_pid(self, alice):
        sys = Syscalls(alice)
        assert sys.getpid() == alice.pid

    def test_new_pid_ns_starts_at_one(self, alice):
        child = alice.fork(new_pid_ns=True)
        assert Syscalls(child).getpid() == 1
        assert child.pid != 1  # host pid unchanged

    def test_children_number_sequentially(self, alice):
        init = alice.fork(new_pid_ns=True)
        c1 = init.fork()
        c2 = init.fork()
        assert Syscalls(c1).getpid() == 2
        assert Syscalls(c2).getpid() == 3

    def test_getppid_inside_ns(self, alice):
        init = alice.fork(new_pid_ns=True)
        child = init.fork()
        assert Syscalls(child).getppid() == 1

    def test_ns_init_parent_shows_zero(self, alice):
        """PID 1's parent is outside the namespace: getppid() == 0."""
        init = alice.fork(new_pid_ns=True)
        assert Syscalls(init).getppid() == 0

    def test_host_still_sees_real_pids(self, alice, kernel):
        init = alice.fork(new_pid_ns=True)
        assert init.pid in kernel.processes
        assert kernel.processes[init.pid].ppid == alice.pid


class TestProcessTracking:
    """§3.1: docker containers hide in a PID namespace under the daemon;
    ch-run jobs are ordinary children of the user's shell."""

    def test_chrun_job_visible_in_host_pid_space(self, world):
        from repro.cluster import make_machine
        from repro.containers import enter_container
        from repro.core import ChImage
        login = make_machine("track", network=world.network)
        alice = login.login("alice")
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
        # no pid namespace: the resource manager sees the job as-is
        assert ctx.proc.pid_ns is None
        assert ctx.sys.getpid() == ctx.proc.pid
        assert ctx.proc.ppid == alice.pid

    def test_podman_container_gets_pid_1(self, world):
        from repro.cluster import make_machine
        from repro.containers import Podman
        login = make_machine("track2", network=world.network)
        podman = Podman(login, login.login("alice"))
        podman.build("FROM centos:7\nRUN true\n", "base")
        out = podman.run("base", ["ps"])
        assert out.status == 0
        lines = out.output.splitlines()
        assert any(l.strip().startswith("1 ") for l in lines[1:])
        # only the container's own processes are listed
        assert all("dockerd" not in l for l in lines)

    def test_docker_container_in_own_pid_ns(self, world):
        from repro.cluster import make_machine
        from repro.containers import DockerDaemon
        login = make_machine("track3", network=world.network)
        docker = DockerDaemon(login, docker_group={1000})
        alice = login.login("alice")
        docker.build(alice, "FROM centos:7\nRUN true\n", "base")
        status, out = docker.run(alice, "base", ["ps"])
        assert status == 0
        # the container sees itself as PID 1, divorced from alice's shell
        assert any(l.strip().startswith("1 ") for l in out.splitlines()[1:])
