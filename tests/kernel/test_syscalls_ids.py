"""Identity and set*id syscall semantics, including the exact failures the
paper's Figure 3 transcript shows."""

import pytest

from repro.errors import Errno, KernelError
from repro.kernel import Cap, OVERFLOW_GID, OVERFLOW_UID, Syscalls


class TestIdentity:
    def test_host_ids(self, alice_sys):
        assert alice_sys.getuid() == 1000
        assert alice_sys.geteuid() == 1000
        assert alice_sys.getegid() == 1000

    def test_type3_sees_root(self, type3_sys):
        """Paper §2.1.1: map the unprivileged invoking user to namespace
        UID 0 — appears privileged inside, unprivileged on the host."""
        assert type3_sys.geteuid() == 0
        assert type3_sys.getegid() == 0
        assert type3_sys.cred.euid == 1000  # reality: still alice

    def test_type2_sees_root(self, type2_sys):
        assert type2_sys.geteuid() == 0
        assert type2_sys.cred.euid == 1000

    def test_supplementary_groups_display_overflow_when_unmapped(
        self, kernel, alice
    ):
        """§2.1.3: supplementary groups must remain unmapped in unprivileged
        namespaces, so they display as nogroup (65534)."""
        alice.cred.groups = frozenset({1000, 5000})
        sys = Syscalls(alice.fork())
        sys.setup_single_id_userns()
        assert sys.getgroups() == sorted({0, OVERFLOW_GID} | set())
        # gid 1000 maps to 0; gid 5000 shows as overflow
        assert OVERFLOW_GID in sys.getgroups()


class TestSetuidFamily:
    def test_root_setuid(self, root_sys, kernel):
        proc = kernel.init_process.fork()
        sys = Syscalls(proc)
        sys.setuid(1000)
        assert sys.geteuid() == 1000
        assert proc.cred.ruid == 1000

    def test_user_setuid_other_eperm(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.setuid(1001)
        assert exc.value.errno == Errno.EPERM

    def test_user_setuid_self_ok(self, alice_sys):
        alice_sys.setuid(1000)

    def test_type3_seteuid_unmapped_is_einval_22(self, type3_sys):
        """Figure 3: 'seteuid 100 failed - seteuid (22: Invalid argument)' —
        apt's drop to _apt (UID 100) fails because 100 is unmapped."""
        with pytest.raises(KernelError) as exc:
            type3_sys.seteuid(100)
        assert exc.value.errno == Errno.EINVAL
        assert int(exc.value.errno) == 22
        assert exc.value.strerror == "Invalid argument"

    def test_type3_setresgid_unmapped_is_einval(self, type3_sys):
        with pytest.raises(KernelError) as exc:
            type3_sys.setresgid(100, 100, 100)
        assert exc.value.errno == Errno.EINVAL

    def test_type2_seteuid_mapped_works(self, type2_sys):
        """In Type II, UID 100 is mapped (to host 200099) so apt's sandbox
        drop succeeds."""
        type2_sys.seteuid(100)
        assert type2_sys.geteuid() == 100
        assert type2_sys.cred.euid == 200099

    def test_type2_full_transition_and_back(self, type2_sys):
        type2_sys.setresuid(100, 100, -1)
        assert type2_sys.geteuid() == 100
        # suid still 0 (host 1000): may return
        type2_sys.seteuid(0)
        assert type2_sys.geteuid() == 0

    def test_setresuid_minus_one_unchanged(self, root_sys, kernel):
        sys = Syscalls(kernel.init_process.fork())
        sys.setresuid(-1, 1000, -1)
        assert sys.cred.euid == 1000
        assert sys.cred.ruid == 0

    def test_setuid_drops_to_all_ids_with_cap(self, kernel):
        sys = Syscalls(kernel.init_process.fork())
        sys.setuid(1000)
        c = sys.cred
        assert (c.ruid, c.euid, c.suid, c.fsuid) == (1000,) * 4

    def test_setgid_family(self, kernel):
        sys = Syscalls(kernel.init_process.fork())
        sys.setgid(1000)
        assert sys.getegid() == 1000
        sys2 = Syscalls(kernel.login(1000, 1000))
        with pytest.raises(KernelError):
            sys2.setgid(555)
        sys2.setegid(1000)


class TestSetgroups:
    def test_figure3_setgroups_eperm_in_type3(self, type3_sys):
        """Figure 3: 'setgroups 65534 failed - setgroups (1: Operation not
        permitted)' — setgroups(2) is not available in unprivileged userns."""
        with pytest.raises(KernelError) as exc:
            type3_sys.setgroups([65534])
        assert exc.value.errno == Errno.EPERM
        assert int(exc.value.errno) == 1
        assert exc.value.strerror == "Operation not permitted"

    def test_host_root_setgroups_ok(self, kernel):
        sys = Syscalls(kernel.init_process.fork())
        sys.setgroups([4, 24, 27])
        assert set(sys.getgroups()) == {4, 24, 27}

    def test_unprivileged_host_setgroups_eperm(self, alice_sys):
        with pytest.raises(KernelError) as exc:
            alice_sys.setgroups([])
        assert exc.value.errno == Errno.EPERM

    def test_type2_setgroups_allowed_when_helper_left_allow(self, type2_sys):
        """Helper-installed maps leave setgroups 'allow': container root can
        call it (the §2.1.4 consequence sysadmins must configure for)."""
        type2_sys.setgroups([0, 5])
        shown = type2_sys.getgroups()
        assert 0 in shown and 5 in shown

    def test_type2_setgroups_unmapped_gid_einval(self, type2_sys):
        with pytest.raises(KernelError) as exc:
            type2_sys.setgroups([70000])  # beyond the 65535 map
        assert exc.value.errno == Errno.EINVAL


class TestUnshare:
    def test_unshare_disabled_by_sysctl(self, kernel, alice):
        kernel.sysctl["user.max_user_namespaces"] = 0
        sys = Syscalls(alice.fork())
        with pytest.raises(KernelError) as exc:
            sys.unshare_user()
        assert exc.value.errno == Errno.EPERM

    def test_unshare_old_kernel(self, alice):
        alice.kernel.kernel_version = (3, 2)
        sys = Syscalls(alice.fork())
        with pytest.raises(KernelError):
            sys.unshare_user()

    def test_userns_count_enforced(self, kernel, alice):
        kernel.sysctl["user.max_user_namespaces"] = 1
        Syscalls(alice.fork()).unshare_user()
        with pytest.raises(KernelError) as exc:
            Syscalls(alice.fork()).unshare_user()
        assert exc.value.errno == Errno.ENOSPC

    def test_creator_gets_full_caps_in_ns(self, type3_sys):
        assert type3_sys.has_cap(Cap.CHOWN)
        assert type3_sys.has_cap(Cap.SYS_ADMIN)

    def test_no_caps_in_parent_ns(self, type3_sys, kernel):
        assert not type3_sys.has_cap(Cap.CHOWN, kernel.init_userns)

    def test_owner_has_caps_in_child_ns(self, kernel, alice):
        """A process keeping alice's euid owns the namespace and holds caps
        in it (the creator-euid rule)."""
        child = alice.fork()
        ns = Syscalls(child).unshare_user()
        other = Syscalls(alice.fork())
        assert other.has_cap(Cap.SETUID, ns)

    def test_map_writes_via_proc_interface(self, kernel, alice):
        from repro.kernel import IdMapEntry
        child = alice.fork()
        sys = Syscalls(child)
        sys.unshare_user()
        sys.write_uid_map([IdMapEntry(0, 1000, 1)])
        with pytest.raises(KernelError):  # gid_map before setgroups deny
            sys.write_gid_map([IdMapEntry(0, 1000, 1)])
        sys.deny_setgroups()
        sys.write_gid_map([IdMapEntry(0, 1000, 1)])
        assert sys.geteuid() == 0
