"""Storage driver tests: functional equivalence, cost asymmetry, and the
shared-filesystem failures of §6.1."""

import pytest

from repro.archive import TarArchive, TarMember
from repro.containers import DriverError, OverlayDriver, VfsDriver, make_driver
from repro.kernel import FileType, Kernel, Syscalls, make_ext4, make_lustre, make_nfs


def simple_layer():
    return TarArchive([
        TarMember("etc", FileType.DIR, 0o755, 0, 0),
        TarMember("etc/hosts", FileType.REG, 0o644, 0, 0, data=b"hosts"),
        TarMember("big.bin", FileType.REG, 0o644, 0, 0, data=b"x" * 1000),
    ])


@pytest.fixture
def host():
    k = Kernel(make_ext4())
    sys0 = Syscalls(k.init_process)
    sys0.mkdir_p("/home/alice")
    sys0.chown("/home/alice", 1000, 1000)
    return k


def user_sys(host):
    proc = host.login(1000, 1000, user="alice", home="/home/alice")
    sys = Syscalls(proc)
    sys.setup_single_id_userns()
    return sys


class TestVfs:
    def test_unpack_and_build(self, host):
        d = make_driver("vfs", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        tree = d.begin_build("base", "work")
        assert d.sys.read_file(f"{tree}/etc/hosts") == b"hosts"

    def test_commit_charges_full_tree(self, host):
        d = make_driver("vfs", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        tree = d.begin_build("base", "work")
        d.sys.write_file(f"{tree}/small.txt", b"tiny")
        diff = d.commit(tree)
        assert {m.path for m in diff} == {"small.txt"}  # diff manifest...
        assert d.stats.storage_bytes >= 1000  # ...but full-copy cost

    def test_works_on_nfs(self, host):
        """vfs needs no xattrs: it is the fallback for shared filesystems."""
        sys0 = Syscalls(host.init_process)
        sys0.mkdir_p("/nfs")
        host.init_process.mnt_ns.add_mount("/nfs", make_nfs())
        sys0.chown("/nfs", 1000, 1000)
        make_driver("vfs", user_sys(host), "/nfs/storage")


class TestOverlay:
    def test_commit_charges_only_diff(self, host):
        d = make_driver("overlay", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        tree = d.begin_build("base", "work")
        d.sys.write_file(f"{tree}/small.txt", b"tiny")
        diff = d.commit(tree)
        assert {m.path for m in diff} == {"small.txt"}
        assert d.stats.storage_bytes == 4  # just "tiny"

    def test_whiteouts_for_deletions(self, host):
        d = make_driver("overlay", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        tree = d.begin_build("base", "work")
        d.sys.unlink(f"{tree}/etc/hosts")
        diff = d.commit(tree)
        wh = [m for m in diff if m.path == "etc/hosts"]
        assert wh and wh[0].ftype is FileType.CHR  # whiteout marker

    def test_refuses_default_nfs(self, host):
        """§6.1: fuse-overlayfs's xattr bookkeeping clashes with
        default-configured shared filesystems."""
        sys0 = Syscalls(host.init_process)
        sys0.mkdir_p("/nfs")
        host.init_process.mnt_ns.add_mount("/nfs", make_nfs())
        sys0.chown("/nfs", 1000, 1000)
        with pytest.raises(DriverError) as exc:
            make_driver("overlay", user_sys(host), "/nfs/storage")
        assert "user xattrs" in str(exc.value)

    def test_refuses_default_lustre(self, host):
        sys0 = Syscalls(host.init_process)
        sys0.mkdir_p("/scratch")
        host.init_process.mnt_ns.add_mount("/scratch", make_lustre())
        sys0.chown("/scratch", 1000, 1000)
        with pytest.raises(DriverError):
            make_driver("overlay", user_sys(host), "/scratch/storage")

    def test_accepts_xattr_enabled_nfs(self, host):
        """§6.2.1: NFSv4.2 + Linux 5.9 xattr support makes it workable."""
        sys0 = Syscalls(host.init_process)
        sys0.mkdir_p("/nfs")
        host.init_process.mnt_ns.add_mount("/nfs",
                                           make_nfs(xattr_support=True))
        sys0.chown("/nfs", 1000, 1000)
        make_driver("overlay", user_sys(host), "/nfs/storage")

    def test_fuse_superblock_owned_by_namespace(self, host):
        d = make_driver("overlay", user_sys(host), "/home/alice/storage")
        fs = d.backing_fs()
        assert fs.fstype == "overlay"
        assert fs.owning_userns is d.sys.cred.userns


class TestCommon:
    def test_unknown_driver(self, host):
        with pytest.raises(DriverError):
            make_driver("zfs", user_sys(host), "/home/alice/s")

    def test_duplicate_image_rejected(self, host):
        d = make_driver("vfs", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        with pytest.raises(DriverError):
            d.unpack_image("base", [simple_layer()], preserve_owner=True)

    def test_delete(self, host):
        d = make_driver("vfs", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        assert d.exists("base")
        d.delete("base")
        assert not d.exists("base")

    def test_export_full_flatten(self, host):
        d = make_driver("vfs", user_sys(host), "/home/alice/storage")
        d.unpack_image("base", [simple_layer()], preserve_owner=True)
        exported = d.export_full(d.image_path("base"), flatten=True)
        assert all((m.uid, m.gid) == (0, 0) for m in exported)

    def test_vfs_copies_more_than_overlay(self, host):
        """The §4.1 claim, as cost accounting."""
        layers = [simple_layer()]
        v = make_driver("vfs", user_sys(host), "/home/alice/sv")
        o = make_driver("overlay", user_sys(host), "/home/alice/so")
        for d in (v, o):
            d.unpack_image("base", layers, preserve_owner=True)
            tree = d.begin_build("base", "w")
            d.sys.write_file(f"{tree}/new", b"1")
            d.commit(tree)
            d.sys.write_file(f"{tree}/new2", b"2")
            d.commit(tree)
        assert v.stats.bytes_copied > 3 * o.stats.bytes_copied
        assert v.stats.storage_bytes > 100 * o.stats.storage_bytes
