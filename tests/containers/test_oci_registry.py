"""Image references, manifests, and registry behaviour."""

import pytest

from repro.archive import TarArchive, TarMember
from repro.containers import ImageConfig, ImageRef, Registry
from repro.errors import RegistryError
from repro.kernel import FileType


def layer(name: str, data: bytes = b"payload") -> TarArchive:
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0, data=data)])


class TestImageRef:
    @pytest.mark.parametrize(
        "text,repo,tag,registry",
        [
            ("centos:7", "centos", "7", None),
            ("centos", "centos", "latest", None),
            ("debian:buster", "debian", "buster", None),
            ("library/ubuntu:20.04", "library/ubuntu", "20.04", None),
            ("gitlab.lanl.gov/app:v1", "app", "v1", "gitlab.lanl.gov"),
            ("localhost/foo", "foo", "latest", "localhost"),
        ],
    )
    def test_parse(self, text, repo, tag, registry):
        ref = ImageRef.parse(text)
        assert ref.repository == repo
        assert ref.tag == tag
        assert ref.registry == registry

    def test_parse_invalid(self):
        with pytest.raises(RegistryError):
            ImageRef.parse("UPPER CASE!!")

    def test_str_roundtrip(self):
        assert str(ImageRef.parse("gitlab.x.gov/a/b:v2")) == \
            "gitlab.x.gov/a/b:v2"

    def test_flat_name(self):
        assert "/" not in ImageRef.parse("a/b:c").flat_name
        assert ":" not in ImageRef.parse("a/b:c").flat_name


class TestRegistry:
    def test_push_pull_roundtrip(self):
        r = Registry("hub")
        cfg = ImageConfig(arch="x86_64", env=("A=1",))
        r.push("app:v1", cfg, [layer("f1"), layer("f2", b"other")])
        config, layers = r.pull("app:v1")
        assert config.env == ("A=1",)
        assert [m.path for l in layers for m in l] == ["f1", "f2"]

    def test_pull_unknown(self):
        with pytest.raises(RegistryError):
            Registry("hub").pull("nope:1")

    def test_blob_dedup_on_push(self):
        r = Registry("hub")
        base = layer("base", b"x" * 100)
        r.push("a:1", ImageConfig(), [base, layer("d1", b"1")])
        before = r.stats.bytes_pushed
        r.push("a:2", ImageConfig(), [base, layer("d2", b"2")])
        # base layer not re-sent
        assert r.stats.blobs_push_skipped == 1
        assert r.stats.bytes_pushed - before < base.serialize().__len__()

    def test_multiarch_variants(self):
        r = Registry("hub")
        r.push("centos:7", ImageConfig(arch="x86_64"), [layer("x")])
        r.push("centos:7", ImageConfig(arch="aarch64"), [layer("a")])
        cfg, _ = r.pull("centos:7", arch="aarch64")
        assert cfg.arch == "aarch64"
        with pytest.raises(RegistryError):
            r.pull("centos:7")  # ambiguous without arch

    def test_single_arch_served_for_any_platform(self):
        """The laptop trap: an x86-only image pulls fine on aarch64."""
        r = Registry("hub")
        r.push("app:v1", ImageConfig(arch="x86_64"), [layer("x")])
        cfg, _ = r.pull("app:v1", arch="aarch64")
        assert cfg.arch == "x86_64"

    def test_tags_and_repositories(self):
        r = Registry("hub")
        r.push("app:v1", ImageConfig(), [layer("x")])
        r.push("app:v2", ImageConfig(), [layer("y")])
        r.push("other:1", ImageConfig(), [layer("z")])
        assert r.tags("app") == ["v1", "v2"]
        assert r.repositories() == ["app", "other"]

    def test_history_persists_old_manifests(self):
        """§4.2: registry persistence for debugging old versions."""
        r = Registry("hub")
        r.push("app:v1", ImageConfig(labels=(("gen", "1"),)), [layer("x")])
        r.push("app:v1", ImageConfig(labels=(("gen", "2"),)),
               [layer("x", b"new")])
        assert len(r.history("app")) == 2

    def test_empty_image_rejected(self):
        with pytest.raises(RegistryError):
            Registry("hub").push("a:1", ImageConfig(), [])

    def test_pull_counts_bytes(self):
        r = Registry("hub")
        r.push("a:1", ImageConfig(), [layer("x", b"d" * 50)])
        r.pull("a:1")
        assert r.stats.blobs_pulled == 1
        assert r.stats.bytes_pulled > 0

    def test_push_skip_counts_bytes_saved(self):
        """The dedup saving is measured in bytes, not just blob counts."""
        r = Registry("hub")
        base = layer("base", b"x" * 100)
        size = len(base.serialize())
        r.push("a:1", ImageConfig(), [base])
        assert r.stats.bytes_push_skipped == 0
        r.push("a:2", ImageConfig(), [base])
        assert r.stats.blobs_push_skipped == 1
        assert r.stats.bytes_push_skipped == size
        assert r.stats.bytes_pushed == size  # stored exactly once

    def test_stats_as_dict(self):
        r = Registry("hub")
        base = layer("base", b"x" * 100)
        r.push("a:1", ImageConfig(), [base])
        r.push("a:2", ImageConfig(), [base])
        r.pull("a:1")
        d = r.stats.as_dict()
        assert set(d) == {"blobs_pushed", "blobs_push_skipped",
                          "bytes_pushed", "bytes_push_skipped",
                          "blobs_pulled", "bytes_pulled",
                          "blobs_pull_skipped", "bytes_pull_skipped"}
        assert d["blobs_push_skipped"] == 1
        assert d["bytes_push_skipped"] == len(base.serialize())
        assert all(isinstance(v, int) for v in d.values())

    def test_pull_skip_counts_local_blobs(self):
        """A node whose local CAS already holds a layer does not re-pull
        it over the wire (the pull-side mirror of push dedup)."""
        from repro.cas import ContentStore
        r = Registry("hub")
        base = layer("base", b"x" * 100)
        size = len(base.serialize())
        r.push("a:1", ImageConfig(), [base])
        node_store = ContentStore()
        r.pull("a:1", local_store=node_store)          # first pull: wire
        assert r.stats.blobs_pulled == 1
        assert r.stats.blobs_pull_skipped == 0
        r.pull("a:1", local_store=node_store)          # second: local hit
        assert r.stats.blobs_pulled == 1               # unchanged
        assert r.stats.blobs_pull_skipped == 1
        assert r.stats.bytes_pull_skipped == size
        # a different node with an empty store still pays the wire cost
        r.pull("a:1", local_store=ContentStore())
        assert r.stats.blobs_pulled == 2


class TestSharedContentStore:
    """Registries backed by one CAS dedup blobs across services."""

    def test_cross_registry_dedup(self):
        from repro.cas import ContentStore
        store = ContentStore()
        hub = Registry("hub", store=store)
        site = Registry("site", store=store)
        base = layer("base", b"x" * 100)
        hub.push("a:1", ImageConfig(), [base])
        site.push("b:1", ImageConfig(), [base])
        # the second service never re-stored the bytes...
        assert site.stats.blobs_push_skipped == 1
        assert store.blob_count == 1
        # ...but both account for (and can serve) them
        assert hub.storage_bytes() == site.storage_bytes() > 0
        _, layers = site.pull("b:1")
        assert layers[0].digest() == base.digest()

    def test_registry_blobs_survive_store_gc(self):
        from repro.cas import ContentStore
        store = ContentStore()
        r = Registry("hub", store=store)
        r.push("a:1", ImageConfig(), [layer("x")])
        orphan = store.put(b"nobody references this")
        assert store.gc() == [orphan]
        assert r.pull("a:1")  # still servable

    def test_cache_manifest_roundtrip(self):
        r = Registry("hub")
        blobs = [b"diff one", b"diff two"]
        digest = r.push_cache("alice/cache:latest", b'{"v": 1}', blobs)
        assert r.has_cache("alice/cache:latest")
        assert not r.has_cache("alice/other:latest")
        manifest, fetch = r.pull_cache("alice/cache:latest")
        assert manifest == b'{"v": 1}'
        from repro.cas import blob_digest
        assert fetch(blob_digest(b"diff one")) == b"diff one"
        with pytest.raises(RegistryError):
            r.pull_cache("alice/missing:1")


class TestManifest:
    def test_digests_are_stable(self):
        cfg = ImageConfig(arch="x86_64")
        assert cfg.digest() == ImageConfig(arch="x86_64").digest()
        assert cfg.digest() != ImageConfig(arch="aarch64").digest()

    def test_config_history(self):
        cfg = ImageConfig().with_history("step 1").with_history("step 2")
        assert cfg.history == ("step 1", "step 2")
