"""The Docker-CLI-compatibility claim of §4: 'alias docker=podman'."""

import pytest

from repro.containers import Podman, podman_cli
from repro.kernel import Syscalls
from tests.conftest import FIG2_DOCKERFILE


@pytest.fixture
def podman(login, alice):
    Syscalls(alice).write_file("/home/alice/Dockerfile",
                               FIG2_DOCKERFILE.encode())
    return Podman(login, alice)


class TestDockerCliCompat:
    def test_build_docker_syntax(self, podman):
        """`docker build -t foo -f Dockerfile .` works verbatim."""
        status, out = podman_cli(podman, [
            "build", "-t", "foo", "-f", "/home/alice/Dockerfile", "."])
        assert status == 0, out
        assert "COMMIT foo" in out

    def test_long_options_too(self, podman):
        status, _ = podman_cli(podman, [
            "build", "--tag", "foo2", "--file", "/home/alice/Dockerfile",
            "."])
        assert status == 0

    def test_run(self, podman):
        podman_cli(podman, ["build", "-t", "foo", "-f",
                            "/home/alice/Dockerfile", "."])
        status, out = podman_cli(podman, ["run", "foo", "id", "-u"])
        assert status == 0
        assert out.strip() == "0"

    def test_pull_and_images(self, podman):
        status, out = podman_cli(podman, ["pull", "debian:buster"])
        assert status == 0
        status, out = podman_cli(podman, ["images"])
        assert "debian buster" in out

    def test_push(self, podman, world):
        podman_cli(podman, ["build", "-t", "foo", "-f",
                            "/home/alice/Dockerfile", "."])
        status, out = podman_cli(
            podman, ["push", "foo", "gitlab.example.gov/alice/foo:v1"])
        assert status == 0
        assert world.site_registry.has("alice/foo:v1")

    def test_unshare_uid_map(self, podman):
        """`podman unshare cat /proc/self/uid_map` — the Figure 4 check."""
        status, out = podman_cli(podman,
                                 ["unshare", "cat", "/proc/self/uid_map"])
        assert status == 0
        lines = [l.split() for l in out.splitlines()]
        assert lines[0] == ["0", "1000", "1"]
        assert lines[1][0] == "1" and lines[1][2] == "65536"

    def test_error_statuses(self, podman):
        assert podman_cli(podman, [])[0] == 125
        assert podman_cli(podman, ["build"])[0] == 125
        assert podman_cli(podman, ["run"])[0] == 125
        assert podman_cli(podman, ["frobnicate"])[0] == 125
        assert podman_cli(podman, ["build", "-t", "x", "-f",
                                   "/missing", "."])[0] == 125


class TestRpmQuery:
    def test_rpm_q_and_qa(self, login, alice):
        from repro.containers import enter_container
        from repro.core import ChImage
        from repro.shell import OutputSink, execute
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)

        def sh(cmd):
            sink = OutputSink()
            st = execute(ctx.child(stdout=sink, stderr=sink),
                         ["/bin/sh", "-c", cmd])
            return st, sink.text()

        st, out = sh("rpm -qa")
        assert st == 0 and "yum-3.4.3" in out
        st, out = sh("rpm -q bash")
        assert st == 0 and out.startswith("bash-")
        st, out = sh("rpm -q no-such")
        assert st == 1 and "not installed" in out


class TestChImageCliForceMode:
    def test_force_seccomp_flag(self, login, alice):
        from repro.core import ChImage, ch_image_cli
        Syscalls(alice).write_file("/home/alice/d.dockerfile",
                                   FIG2_DOCKERFILE.encode())
        ch = ChImage(login, alice)
        status, out = ch_image_cli(ch, [
            "build", "--force=seccomp", "-t", "foo", "-f",
            "/home/alice/d.dockerfile", "."])
        assert status == 0, out
        assert "will use --force: seccomp" in out
        assert ch.force_mode == "fakeroot"  # restored after the call

    def test_bad_force_mode(self, login, alice):
        from repro.core import ChImage, ch_image_cli
        ch = ChImage(login, alice)
        status, out = ch_image_cli(ch, [
            "build", "--force=ebpf", "-t", "x", "-f", "/nope", "."])
        assert status == 1 and "unknown --force mode" in out
