"""Docker (Type I) and runtime-layer tests."""

import pytest

from repro.containers import (
    ContainerError,
    CrunRuntime,
    DockerDaemon,
    DockerError,
    RuncRuntime,
    enter_container,
)
from repro.core import ChImage
from repro.kernel import OVERFLOW_UID, Syscalls
from repro.kernel.cgroups import CgroupV1Hierarchy, CgroupV2Hierarchy
from tests.conftest import FIG2_DOCKERFILE


@pytest.fixture
def docker(login):
    return DockerDaemon(login, docker_group={1000})


class TestDockerTypeI:
    def test_build_succeeds_as_root(self, docker, alice):
        """Type I: package managers really are root, so Figure 2's
        Dockerfile builds with no tricks at all."""
        res = docker.build(alice, FIG2_DOCKERFILE, "foo")
        assert res.success, res.text

    def test_container_root_is_host_root(self, docker, alice, login):
        docker.build(alice, "FROM centos:7\nRUN true\n", "base")
        status, out = docker.run(alice, "base", ["id", "-u"])
        assert status == 0
        assert out.strip() == "0"
        # and it is REAL host root: the container process's kernel euid is 0
        # (verified structurally: the daemon's children keep euid 0)
        assert docker.daemon_proc.cred.euid == 0

    def test_socket_access_denied_outside_group(self, docker, login):
        carol = login.kernel.login(1002, 1002, user="carol")
        with pytest.raises(DockerError) as exc:
            docker.pull(carol, "centos:7")
        assert "permission denied" in str(exc.value).lower()

    def test_docker_group_is_root_equivalent(self, docker, alice, login):
        """§3.1: 'even simply having access to the docker command is
        equivalent to root by design' — alice escalates by bind-mounting /
        and editing host /etc."""
        docker.build(alice, "FROM centos:7\nRUN true\n", "base")
        status, _ = docker.run(
            alice, "base",
            ["/bin/sh", "-c", "echo pwned > /host/etc/motd"],
            binds=[("/", "/host")])
        assert status == 0
        host_sys = Syscalls(login.kernel.init_process)
        assert host_sys.read_file("/etc/motd") == b"pwned\n"

    def test_containers_descend_from_daemon(self, docker, alice, login):
        """§3.1: 'processes started with docker run are descendants of the
        Docker daemon, not the shell'."""
        assert docker.container_parent_pid(None) == docker.daemon_proc.pid
        assert docker.daemon_proc.ppid == login.kernel.init_process.pid

    def test_daemon_needs_root(self, world):
        from repro.cluster import make_machine
        m = make_machine("m", network=world.network)
        # daemon construction from a machine works (init is root); verify
        # the explicit guard by faking a non-root init credential
        m.kernel.init_process.cred.euid = 1000
        with pytest.raises(DockerError):
            DockerDaemon(m)


class TestEnterContainer:
    def test_unknown_privilege(self, login, alice):
        with pytest.raises(ContainerError):
            enter_container(alice, "/", "type9")

    def test_type1_requires_root(self, login, alice):
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        with pytest.raises(ContainerError):
            enter_container(alice, tree, "type1", dev_fs=login.dev_fs)

    def test_type2_requires_helpers(self, login, alice):
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        with pytest.raises(ContainerError):
            enter_container(alice, tree, "type2", dev_fs=login.dev_fs)

    def test_type3_proc_owned_by_nobody(self, login, alice):
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
        st = ctx.sys.stat("/proc/cpuinfo")
        assert st.st_uid == OVERFLOW_UID

    def test_dev_null_available(self, login, alice):
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
        ctx.sys.write_file("/dev/null", b"discard")  # must not fail

    def test_join_foreign_userns_rejected(self, login, alice):
        bob = login.login("bob")
        bob_sys = Syscalls(bob.fork())
        ns = bob_sys.unshare_user()
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        with pytest.raises(ContainerError):
            enter_container(alice, tree, "type3", dev_fs=login.dev_fs,
                            join_userns=ns)

    def test_uid_map_visible_in_container_proc(self, login, alice):
        ch = ChImage(login, alice)
        tree = ch.pull("centos:7")
        ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
        content = ctx.sys.read_file("/proc/self/uid_map").decode()
        assert content.split() == ["0", "1000", "1"]


class TestRuntimes:
    def test_runc_skips_cgroups_rootless(self, login, alice):
        """§4.1: 'with rootless Podman, cgroups are left unused'."""
        runtime = RuncRuntime()
        h = CgroupV1Hierarchy()
        assert runtime.cgroup_setup(alice.cred, h) is None

    def test_runc_uses_cgroups_for_root(self, login):
        runtime = RuncRuntime()
        h = CgroupV1Hierarchy()
        group = runtime.cgroup_setup(login.kernel.init_process.cred, h)
        assert group is not None

    def test_crun_unprivileged_cgroups_v2(self, login, alice):
        """§4.1: the crun cgroups-v2 prototype."""
        runtime = CrunRuntime()
        h = CgroupV2Hierarchy()
        root_cred = login.kernel.init_process.cred
        session = h.create(h.root, "user-1000", root_cred)
        h.delegate(h.root, 1000, root_cred)  # delegate the root subtree
        group = runtime.cgroup_setup(alice.cred, h)
        assert group is not None
        h.set_limit(group, "memory.max", 1 << 30, alice.cred)

    def test_crun_rejects_v1(self, login, alice):
        runtime = CrunRuntime()
        assert runtime.cgroup_setup(alice.cred, CgroupV1Hierarchy()) is None
