"""The multi-stage Dockerfile dependency graph (parse_stage_graph)."""

import pytest

from repro.containers import Stage, StageGraph, parse_stage_graph
from repro.errors import BuildError

DIAMOND = """\
FROM centos:7 AS base
RUN echo base > /base.txt

FROM base AS left
RUN yum install -y gcc

FROM base AS right
RUN yum install -y openssh

FROM base
COPY --from=left /base.txt /l
COPY --from=right /base.txt /r
"""


class TestParse:
    def test_single_stage(self):
        g = parse_stage_graph("FROM centos:7\nRUN echo hi\n")
        assert len(g) == 1
        assert g.final.base_ref == "centos:7"
        assert g.final.deps == ()
        assert g.final.base_stage is None

    def test_diamond_edges(self):
        g = parse_stage_graph(DIAMOND)
        assert [s.deps for s in g.stages] == [(), (0,), (0,), (0, 1, 2)]
        assert [s.base_stage for s in g.stages] == [None, 0, 0, 0]
        assert g.stages[1].name == "left"
        assert g.final.name is None

    def test_first_ordinals_are_global(self):
        """Instruction numbering is file-global, so transcripts are
        identical however stages get scheduled."""
        g = parse_stage_graph(DIAMOND)
        assert [s.first_ordinal for s in g.stages] == [1, 3, 5, 7]
        assert g.total_instructions == 9

    def test_copy_from_index(self):
        g = parse_stage_graph("FROM centos:7\nRUN echo a > /a\n"
                              "FROM centos:7\nCOPY --from=0 /a /a\n")
        assert g.stages[1].deps == (0,)

    def test_from_stage_by_name(self):
        g = parse_stage_graph("FROM centos:7 AS b\nFROM b\nRUN echo x\n")
        assert g.stages[1].base_stage == 0

    def test_stage_named(self):
        g = parse_stage_graph(DIAMOND)
        assert g.stage_named("LEFT").index == 1
        assert g.stage_named("2").index == 2
        assert g.stage_named("nope") is None


class TestCaseInsensitivity:
    """Dockerfile stage names are case-insensitive (the satellite fix)."""

    def test_as_name_normalized(self):
        g = parse_stage_graph("FROM centos:7 AS Builder\nFROM centos:7\n"
                              "COPY --from=builder /x /x\n")
        assert g.stages[0].name == "builder"
        assert g.stages[1].deps == (0,)

    def test_mixed_case_reference(self):
        g = parse_stage_graph("FROM centos:7 AS builder\nFROM BUILDER\n"
                              "COPY --from=BuIlDeR /x /x\n")
        assert g.stages[1].base_stage == 0
        assert g.stages[1].deps == (0,)

    def test_duplicate_name_differs_only_in_case(self):
        with pytest.raises(BuildError, match="duplicate stage name"):
            parse_stage_graph("FROM centos:7 AS app\nFROM centos:7 AS APP\n")


class TestErrors:
    def test_unknown_copy_from(self):
        with pytest.raises(BuildError, match="no such stage"):
            parse_stage_graph("FROM centos:7\nCOPY --from=ghost /x /x\n")

    def test_forward_reference_rejected(self):
        """A stage may only read stages defined above it."""
        with pytest.raises(BuildError, match="no such stage"):
            parse_stage_graph("FROM centos:7\nCOPY --from=later /x /x\n"
                              "FROM centos:7 AS later\n")

    def test_self_reference_rejected(self):
        with pytest.raises(BuildError, match="no such stage"):
            parse_stage_graph("FROM centos:7 AS me\nCOPY --from=me /x /x\n")

    def test_duplicate_stage_name(self):
        with pytest.raises(BuildError, match="duplicate stage name"):
            parse_stage_graph("FROM centos:7 AS a\nFROM centos:7 AS a\n")

    def test_from_as_same_name_is_external(self):
        """FROM x AS x refers to the external image x, not itself."""
        g = parse_stage_graph("FROM alpine AS alpine\nRUN echo hi\n")
        assert g.stages[0].base_stage is None
        assert g.stages[0].base_ref == "alpine"


class TestTopology:
    def test_topo_order_diamond(self):
        order = parse_stage_graph(DIAMOND).topo_order()
        assert order == [0, 1, 2, 3]

    def test_dependency_levels(self):
        levels = parse_stage_graph(DIAMOND).dependency_levels()
        assert levels == [[0], [1, 2], [3]]

    def test_cycle_detected(self):
        """parse order can't produce a cycle, but hand-built graphs (the
        scheduler's other clients) must still be rejected."""
        a = Stage(index=0, name="a", base_ref="x", base_stage=None,
                  instructions=(), deps=(1,), first_ordinal=1)
        b = Stage(index=1, name="b", base_ref="x", base_stage=None,
                  instructions=(), deps=(0,), first_ordinal=2)
        with pytest.raises(BuildError, match="cycle"):
            StageGraph([a, b]).topo_order()

    def test_cycle_detected_by_levels_too(self):
        a = Stage(index=0, name="a", base_ref="x", base_stage=None,
                  instructions=(), deps=(0,), first_ordinal=1)
        with pytest.raises(BuildError, match="cycle"):
            StageGraph([a]).dependency_levels()

    def test_unknown_dep_index(self):
        a = Stage(index=0, name="a", base_ref="x", base_stage=None,
                  instructions=(), deps=(7,), first_ordinal=1)
        with pytest.raises(BuildError, match="unknown stage"):
            StageGraph([a]).topo_order()
