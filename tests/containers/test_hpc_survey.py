"""§3.1 survey implementations: Singularity, Shifter/Sarus, Enroot."""

import pytest

from repro.archive import TarArchive
from repro.containers import (
    DefinitionFile,
    Enroot,
    HpcRuntimeError,
    ShifterGateway,
    Singularity,
    SingularityError,
)
from repro.core import ChImage, push_image

SINGULARITY_DEF = """\
Bootstrap: docker
From: centos:7

%post
    yum install -y gcc openmpi hdf5 atse

%environment
    export STACK=atse

%runscript
    /opt/atse/bin/atse-info
"""


class TestDefinitionFile:
    def test_parse(self):
        spec = DefinitionFile.parse(SINGULARITY_DEF)
        assert spec.bootstrap == "docker"
        assert spec.base == "centos:7"
        assert "yum install" in spec.post
        assert "STACK=atse" in spec.environment
        assert "atse-info" in spec.runscript

    def test_missing_headers(self):
        with pytest.raises(SingularityError):
            DefinitionFile.parse("%post\n  true\n")


class TestSingularity:
    def test_type2_build_from_definition(self, login, alice):
        """§3.1: 'Singularity 3.7 can build in Type II mode, but only from
        Singularity definition files'."""
        sing = Singularity(login, alice)
        image = sing.build("/home/alice/atse.sif", SINGULARITY_DEF)
        assert image.is_flattened
        status, out = sing.run(image, ["/opt/atse/bin/atse-info"])
        assert status == 0, out
        assert "ATSE" in out

    def test_dockerfile_rejected(self, login, alice):
        """The interoperability limitation, verbatim."""
        sing = Singularity(login, alice)
        with pytest.raises(SingularityError) as exc:
            sing.build("/home/alice/x.sif",
                       "FROM centos:7\nRUN yum install -y gcc\n")
        assert "definition files" in str(exc.value)

    def test_sif_is_single_flattened_file(self, login, alice):
        sing = Singularity(login, alice)
        image = sing.build("/home/alice/atse.sif", SINGULARITY_DEF)
        blob = sing.sys.read_file(image.path)
        archive = TarArchive.deserialize(blob)
        assert all((m.uid, m.gid) == (0, 0) for m in archive)
        assert all(not m.mode & 0o6000 for m in archive)

    def test_failing_post_reported(self, login, alice):
        sing = Singularity(login, alice)
        bad = "Bootstrap: docker\nFrom: centos:7\n\n%post\n    false\n"
        with pytest.raises(SingularityError) as exc:
            sing.build("/home/alice/bad.sif", bad)
        assert "%post failed" in str(exc.value)

    def test_fakeroot_can_be_disabled_by_admin(self, login, alice):
        sing = Singularity(login, alice, allow_fakeroot=False)
        with pytest.raises(SingularityError):
            sing.build("/home/alice/x.sif", SINGULARITY_DEF)

    def test_conversion_path_from_docker(self, login, alice, world):
        """§3.1: build elsewhere, convert to SIF."""
        ch = ChImage(login, alice)
        assert ch.build(tag="app", force=True,
                        dockerfile="FROM centos:7\nRUN yum install -y "
                                   "gcc openmpi hdf5 atse\n").success
        push_image(ch.storage, "app", "gitlab.example.gov/alice/app:v1")
        _, layers = world.site_registry.pull("alice/app:v1")
        sing = Singularity(login, alice)
        image = sing.build_from_docker_archive("/home/alice/conv.sif", layers)
        status, out = sing.run(image, ["/opt/atse/bin/atse-info"])
        assert status == 0, out


class TestShifter:
    def test_pull_and_run(self, login, alice):
        gw = ShifterGateway(login)
        gw.pull("centos:7")
        status, out = gw.run(alice, "centos:7",
                             ["cat", "/etc/redhat-release"])
        assert status == 0
        assert "CentOS" in out

    def test_job_keeps_user_credentials(self, login, alice):
        """Type I mount setup, but the job is NOT root."""
        gw = ShifterGateway(login)
        gw.pull("centos:7")
        status, out = gw.run(alice, "centos:7", ["id", "-u"])
        assert status == 0
        assert out.strip() == "1000"

    def test_no_build_capability(self, login):
        gw = ShifterGateway(login)
        with pytest.raises(HpcRuntimeError) as exc:
            gw.build("FROM centos:7\n", "x")
        assert "no build capability" in str(exc.value)

    def test_run_requires_prior_pull(self, login, alice):
        gw = ShifterGateway(login)
        with pytest.raises(HpcRuntimeError):
            gw.run(alice, "debian:buster", ["true"])


class TestEnroot:
    def test_import_and_start_fully_unprivileged(self, login, alice):
        """§3.1: 'fully unprivileged', 'no setuid binary'."""
        enroot = Enroot(login, alice)
        enroot.import_image("centos:7")
        status, out = enroot.start("centos:7", ["id", "-u"])
        assert status == 0
        assert out.strip() == "0"  # container root = alias of alice

    def test_image_owned_by_user(self, login, alice):
        enroot = Enroot(login, alice)
        path = enroot.import_image("centos:7")
        st = enroot.sys.stat(f"{path}/etc/redhat-release")
        assert st.kuid == 1000

    def test_no_build_capability(self, login, alice):
        enroot = Enroot(login, alice)
        with pytest.raises(HpcRuntimeError) as exc:
            enroot.build()
        assert "no build capability" in str(exc.value)

    def test_start_requires_import(self, login, alice):
        with pytest.raises(HpcRuntimeError):
            Enroot(login, alice).start("centos:7", ["true"])


class TestShifterReadOnly:
    def test_image_is_read_only_for_jobs(self, login, alice):
        """Shifter images are loop-mounted squashfs: jobs cannot write them."""
        gw = ShifterGateway(login)
        gw.pull("centos:7")
        status, out = gw.run(alice, "centos:7",
                             ["/bin/sh", "-c", "echo x > /etc/injected"])
        assert status != 0
        assert "Read-only file system" in out

    def test_reads_still_work(self, login, alice):
        gw = ShifterGateway(login)
        gw.pull("centos:7")
        status, _ = gw.run(alice, "centos:7", ["cat", "/etc/redhat-release"])
        assert status == 0
