"""Storage cost-model tests: the FS_PARAMS-driven simulated costs."""

import pytest

from repro.containers.storage import make_driver
from repro.kernel import Kernel, Syscalls, make_ext4, make_lustre
from repro.kernel.filesystem_params import FS_PARAMS


@pytest.fixture
def host():
    k = Kernel(make_ext4())
    sys0 = Syscalls(k.init_process)
    sys0.mkdir_p("/home/alice")
    sys0.chown("/home/alice", 1000, 1000)
    return k


def _user_sys(host):
    proc = host.login(1000, 1000, user="alice", home="/home/alice")
    sys = Syscalls(proc)
    sys.setup_single_id_userns()
    return sys


class TestCostModel:
    def test_params_exist_for_all_modeled_types(self):
        for fstype in ("ext4", "tmpfs", "nfs", "lustre", "gpfs", "overlay"):
            assert fstype in FS_PARAMS
            assert FS_PARAMS[fstype].meta_op_cost > 0

    def test_shared_fs_metadata_more_expensive(self):
        assert FS_PARAMS["nfs"].meta_op_cost > 10 * FS_PARAMS["ext4"].meta_op_cost
        assert FS_PARAMS["lustre"].meta_op_cost > 10 * FS_PARAMS["ext4"].meta_op_cost

    def test_fuse_overhead_only_on_overlay(self):
        assert FS_PARAMS["overlay"].fuse_overhead > 0
        assert FS_PARAMS["ext4"].fuse_overhead == 0

    def test_vfs_cost_scales_with_activity(self, host):
        from repro.archive import TarArchive, TarMember
        from repro.kernel import FileType
        sys = _user_sys(host)
        d = make_driver("vfs", sys, "/home/alice/storage")
        assert d.simulated_cost() == 0
        layer = TarArchive([TarMember("f", FileType.REG, 0o644, 0, 0,
                                      data=b"x" * 1000)])
        d.unpack_image("base", [layer], preserve_owner=True)
        cost1 = d.simulated_cost()
        assert cost1 > 0
        tree = d.begin_build("base", "w")
        d.commit(tree)
        assert d.simulated_cost() > cost1

    def test_lustre_vfs_costs_more_than_local(self, host):
        """Same work, pricier metadata on the shared filesystem."""
        from repro.archive import TarArchive, TarMember
        from repro.kernel import FileType
        root = Syscalls(host.init_process)
        root.mkdir_p("/scratch")
        host.init_process.mnt_ns.add_mount(
            "/scratch", make_lustre(xattr_support=True))
        root.chown("/scratch", 1000, 1000)
        layer = TarArchive([TarMember("f", FileType.REG, 0o644, 0, 0,
                                      data=b"x" * 100)])
        sys = _user_sys(host)
        local = make_driver("vfs", sys, "/home/alice/s1")
        shared = make_driver("vfs", sys, "/scratch/s2")
        for d in (local, shared):
            d.unpack_image("base", [layer], preserve_owner=True)
        assert shared.simulated_cost() > 10 * local.simulated_cost()
