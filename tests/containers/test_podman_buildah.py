"""Rootless Podman/Buildah integration tests: the Type II story of §4."""

import pytest

from repro.cluster import make_machine
from repro.containers import Podman, PodmanError
from repro.errors import RegistryError
from tests.conftest import FIG2_DOCKERFILE, FIG3_DOCKERFILE


@pytest.fixture
def podman(login, alice):
    return Podman(login, alice)


class TestRootlessSetup:
    def test_uid_map_matches_figure4_shape(self, podman):
        """Figure 4: 0 -> user, 1..65536 -> subordinate range."""
        entries = podman.uid_map()
        assert entries[0].inside_start == 0
        assert entries[0].outside_start == 1000
        assert entries[0].count == 1
        assert entries[1].inside_start == 1
        assert entries[1].count == 65536

    def test_refuses_without_subids(self, world):
        """§4.1: mappings must be configured by the administrator."""
        m = make_machine("nosubids", network=world.network, subids=False)
        with pytest.raises(PodmanError) as exc:
            Podman(m, m.login("alice"))
        assert "subordinate" in str(exc.value).lower() or \
            "/etc/subuid" in str(exc.value)

    def test_unprivileged_mode_single_map(self, login):
        """Figure 5: unprivileged mode maps exactly one UID."""
        p = Podman(login, login.login("bob"), unprivileged=True,
                   ignore_chown_errors=True)
        entries = p.uid_map()
        assert len(entries) == 1
        assert entries[0].count == 1


class TestBuild:
    def test_figure2_builds_type2(self, podman):
        """§4.1: 'the examples detailed in Figures 2 and 3 will both
        succeed as expected when executed by a normal, unprivileged user'."""
        res = podman.build(FIG2_DOCKERFILE, "foo")
        assert res.success, res.text
        assert "Complete!" in res.text

    def test_figure3_builds_type2(self, podman):
        res = podman.build(FIG3_DOCKERFILE, "bar")
        assert res.success, res.text
        assert "Setting up openssh-client" in res.text

    def test_file_capabilities_applied_via_fuse_overlay(self, podman):
        res = podman.build(FIG3_DOCKERFILE, "caps")
        assert res.success
        tree = podman.buildah.image_tree("caps")
        val = podman.buildah.driver.sys.getxattr(
            f"{tree}/usr/lib/openssh/ssh-keysign", "security.capability")
        assert val == b"cap_net_bind_service+ep"

    def test_multi_layer_manifest(self, podman, world):
        res = podman.build(FIG2_DOCKERFILE, "foo")
        assert res.success
        manifest = podman.push("foo", "gitlab.example.gov/alice/foo:1")
        # base layer + one per executed instruction
        assert manifest.layer_count == 1 + res.instructions_run

    def test_unknown_base_image(self, podman):
        res = podman.build("FROM nosuch:1\nRUN true\n", "x")
        assert not res.success

    def test_failing_run_reports_step(self, podman):
        res = podman.build("FROM centos:7\nRUN false\n", "x")
        assert not res.success
        assert 'STEP "RUN false"' in res.error

    def test_build_cache_hits_on_rebuild(self, podman):
        r1 = podman.build(FIG2_DOCKERFILE, "foo")
        assert r1.cache_hits == 0
        r2 = podman.build(FIG2_DOCKERFILE, "foo2")
        assert r2.success
        assert r2.cache_hits == 2  # both RUNs cached
        assert "Using cache" in r2.text

    def test_cache_disabled(self, login, alice):
        p = Podman(login, alice, layers_cache=False)
        p.build(FIG2_DOCKERFILE, "a")
        r2 = p.build(FIG2_DOCKERFILE, "b")
        assert r2.cache_hits == 0

    def test_env_and_workdir(self, podman):
        df = ("FROM centos:7\nENV GREETING=hi\nWORKDIR /data\n"
              "RUN echo $GREETING > msg\n")
        res = podman.build(df, "envtest")
        assert res.success, res.text
        tree = podman.buildah.image_tree("envtest")
        assert podman.buildah.driver.sys.read_file(
            f"{tree}/data/msg") == b"hi\n"

    def test_copy_from_host(self, podman, alice, login):
        from repro.kernel import Syscalls
        Syscalls(alice).write_file("/home/alice/app.conf", b"conf")
        res = podman.build(
            "FROM centos:7\nCOPY /home/alice/app.conf /etc/app.conf\n",
            "copytest")
        assert res.success, res.text
        tree = podman.buildah.image_tree("copytest")
        assert podman.buildah.driver.sys.read_file(
            f"{tree}/etc/app.conf") == b"conf"


class TestUnprivilegedMode:
    def test_openssh_works_with_ignore_chown(self, login):
        """§4.1.1: the single-ID mode + --ignore_chown_errors squashes
        ownership but lets plain chown-only packages install."""
        p = Podman(login, login.login("bob"), unprivileged=True,
                   ignore_chown_errors=True)
        res = p.build(FIG2_DOCKERFILE, "foo")
        assert res.success, res.text
        tree = p.buildah.image_tree("foo")
        st = p.buildah.driver.sys.stat(
            f"{tree}/usr/libexec/openssh/ssh-keysign")
        assert st.kuid == 1001  # squashed to bob, not a subordinate ID

    def test_openssh_server_fails_proc_nobody(self, login):
        """Figure 5: openssh-server fails because /proc is owned by
        nobody in the single-ID namespace."""
        p = Podman(login, login.login("bob"), unprivileged=True,
                   ignore_chown_errors=True)
        res = p.build("FROM centos:7\nRUN yum install -y openssh-server\n",
                      "srv")
        assert not res.success
        assert "Permission denied" in res.text

    def test_without_ignore_chown_fails(self, login):
        p = Podman(login, login.login("bob"), unprivileged=True,
                   ignore_chown_errors=False)
        res = p.build(FIG2_DOCKERFILE, "foo")
        assert not res.success


class TestRun:
    def test_run_fork_exec_no_daemon(self, podman, login):
        res = podman.build(
            "FROM centos:7\nRUN yum install -y gcc openmpi atse hdf5\n",
            "atse")
        assert res.success, res.text
        out = podman.run("atse", ["/opt/atse/bin/atse-info"])
        assert out.status == 0, out.output
        assert "ATSE" in out.output
        # no dockerd anywhere on the machine
        assert not any(p.comm == "dockerd"
                       for p in login.kernel.processes.values())

    def test_run_sees_root_identity(self, podman):
        podman.build("FROM centos:7\nRUN true\n", "base")
        out = podman.run("base", ["id", "-u"])
        assert out.output.strip() == "0"

    def test_push_and_pull_roundtrip(self, podman, world, login):
        res = podman.build(FIG2_DOCKERFILE, "foo")
        assert res.success
        podman.push("foo", "gitlab.example.gov/alice/foo:v1")
        assert world.site_registry.has("alice/foo:v1")
        p2 = Podman(login, login.login("bob"))
        img = p2.pull("gitlab.example.gov/alice/foo:v1")
        assert p2.buildah.driver.sys.exists(
            f"{img.tree_path}/usr/bin/ssh")
