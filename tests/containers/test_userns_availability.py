"""§3.1's history lesson: "user namespaces were not available until Linux
3.8 ... Without user namespaces, only Type I containers are possible."
"""

import pytest

from repro.cluster import make_machine
from repro.containers import ContainerError, DockerDaemon, PodmanError, Podman
from repro.core import ChImage
from repro.errors import Errno, KernelError
from repro.kernel import Syscalls
from tests.conftest import FIG2_DOCKERFILE


@pytest.fixture
def old_rhel(world):
    """A RHEL-7.5-era node: kernel too old / userns disabled."""
    return make_machine("rhel75", network=world.network,
                        kernel_version=(3, 10), userns_enabled=False)


class TestWithoutUserNamespaces:
    def test_unshare_fails(self, old_rhel):
        alice = old_rhel.login("alice")
        with pytest.raises(KernelError) as exc:
            Syscalls(alice.fork()).unshare_user()
        assert exc.value.errno == Errno.EPERM

    def test_chimage_build_fails_clearly(self, old_rhel):
        ch = ChImage(old_rhel, old_rhel.login("alice"))
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert not r.success
        assert "user namespace" in r.text

    def test_podman_rootless_fails(self, old_rhel):
        with pytest.raises((PodmanError, ContainerError, KernelError)):
            Podman(old_rhel, old_rhel.login("alice"))

    def test_docker_type1_still_works(self, old_rhel):
        """Type I needs no user namespaces — which is why Docker (2013,
        Linux 2.6.24) predates them and became the standard."""
        docker = DockerDaemon(old_rhel, docker_group={1000})
        r = docker.build(old_rhel.login("alice"), FIG2_DOCKERFILE, "foo")
        assert r.success, r.text


class TestSysctlDisabled:
    def test_admin_can_disable_userns(self, world):
        m = make_machine("locked", network=world.network)
        m.kernel.sysctl["user.max_user_namespaces"] = 0
        ch = ChImage(m, m.login("alice"))
        r = ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)
        assert not r.success

    def test_namespace_quota_exhaustion(self, world):
        m = make_machine("tight", network=world.network)
        m.kernel.sysctl["user.max_user_namespaces"] = 2
        alice = m.login("alice")
        Syscalls(alice.fork()).unshare_user()
        Syscalls(alice.fork()).unshare_user()
        with pytest.raises(KernelError) as exc:
            Syscalls(alice.fork()).unshare_user()
        assert exc.value.errno == Errno.ENOSPC
