"""Dockerfile parser tests."""

import pytest

from repro.containers import Instruction, parse_dockerfile, split_env_args
from repro.errors import BuildError


class TestParse:
    def test_figure2_dockerfile(self):
        text = "FROM centos:7\nRUN echo hello\nRUN yum install -y openssh\n"
        instrs = parse_dockerfile(text)
        assert [i.kind for i in instrs] == ["FROM", "RUN", "RUN"]
        assert instrs[2].shell_words() == \
            ["/bin/sh", "-c", "yum install -y openssh"]

    def test_comments_and_blanks(self):
        instrs = parse_dockerfile(
            "# header\n\nFROM centos:7\n  # indented comment\nRUN ls\n")
        assert len(instrs) == 2

    def test_continuations(self):
        instrs = parse_dockerfile(
            "FROM centos:7\nRUN yum install -y \\\n  gcc \\\n  make\n")
        assert instrs[1].args == "yum install -y gcc make"
        assert instrs[1].lineno == 2

    def test_exec_form(self):
        instrs = parse_dockerfile('FROM a\nRUN ["/usr/bin/tool", "--x"]\n')
        assert instrs[1].exec_form == ("/usr/bin/tool", "--x")
        assert instrs[1].shell_words() == ["/usr/bin/tool", "--x"]

    def test_bad_exec_form(self):
        with pytest.raises(BuildError):
            parse_dockerfile('FROM a\nRUN [1, 2]\n')

    def test_must_start_with_from(self):
        with pytest.raises(BuildError):
            parse_dockerfile("RUN echo hi\n")
        with pytest.raises(BuildError):
            parse_dockerfile("")

    def test_unknown_instruction(self):
        with pytest.raises(BuildError):
            parse_dockerfile("FROM a\nFOO bar\n")

    def test_case_insensitive_kinds(self):
        instrs = parse_dockerfile("from a\nrun echo x\n")
        assert [i.kind for i in instrs] == ["FROM", "RUN"]

    def test_all_kinds_accepted(self):
        text = (
            "FROM a\nENV K=V\nARG X=1\nWORKDIR /w\nLABEL maint=me\n"
            "USER nobody\nEXPOSE 8080\nVOLUME /data\nCOPY a b\n"
            "CMD [\"/bin/sh\"]\nENTRYPOINT [\"/init\"]\n"
        )
        instrs = parse_dockerfile(text)
        assert len(instrs) == 11


class TestSplitEnvArgs:
    def test_equals_form(self):
        assert split_env_args("A=1 B=two") == [("A", "1"), ("B", "two")]

    def test_quoted_values(self):
        assert split_env_args('MSG="hello world" X=1') == \
            [("MSG", "hello world"), ("X", "1")]

    def test_space_form(self):
        assert split_env_args("PATH /usr/bin:/bin") == \
            [("PATH", "/usr/bin:/bin")]
