"""Dockerfile parser tests."""

import pytest

from repro.containers import (
    Instruction,
    parse_dockerfile,
    render_dockerfile,
    split_env_args,
    template_preamble_args,
    template_variables,
)
from repro.errors import BuildError


class TestParse:
    def test_figure2_dockerfile(self):
        text = "FROM centos:7\nRUN echo hello\nRUN yum install -y openssh\n"
        instrs = parse_dockerfile(text)
        assert [i.kind for i in instrs] == ["FROM", "RUN", "RUN"]
        assert instrs[2].shell_words() == \
            ["/bin/sh", "-c", "yum install -y openssh"]

    def test_comments_and_blanks(self):
        instrs = parse_dockerfile(
            "# header\n\nFROM centos:7\n  # indented comment\nRUN ls\n")
        assert len(instrs) == 2

    def test_continuations(self):
        instrs = parse_dockerfile(
            "FROM centos:7\nRUN yum install -y \\\n  gcc \\\n  make\n")
        assert instrs[1].args == "yum install -y gcc make"
        assert instrs[1].lineno == 2

    def test_exec_form(self):
        instrs = parse_dockerfile('FROM a\nRUN ["/usr/bin/tool", "--x"]\n')
        assert instrs[1].exec_form == ("/usr/bin/tool", "--x")
        assert instrs[1].shell_words() == ["/usr/bin/tool", "--x"]

    def test_bad_exec_form(self):
        with pytest.raises(BuildError):
            parse_dockerfile('FROM a\nRUN [1, 2]\n')

    def test_must_start_with_from(self):
        with pytest.raises(BuildError):
            parse_dockerfile("RUN echo hi\n")
        with pytest.raises(BuildError):
            parse_dockerfile("")

    def test_unknown_instruction(self):
        with pytest.raises(BuildError):
            parse_dockerfile("FROM a\nFOO bar\n")

    def test_case_insensitive_kinds(self):
        instrs = parse_dockerfile("from a\nrun echo x\n")
        assert [i.kind for i in instrs] == ["FROM", "RUN"]

    def test_all_kinds_accepted(self):
        text = (
            "FROM a\nENV K=V\nARG X=1\nWORKDIR /w\nLABEL maint=me\n"
            "USER nobody\nEXPOSE 8080\nVOLUME /data\nCOPY a b\n"
            "CMD [\"/bin/sh\"]\nENTRYPOINT [\"/init\"]\n"
        )
        instrs = parse_dockerfile(text)
        assert len(instrs) == 11


TEMPLATE = """\
ARG mpi=openmpi
ARG fw
FROM ${base}
RUN echo install ${mpi}
RUN echo build ${fw} with ${mpi}
"""


class TestTemplates:
    def test_variables_found_everywhere(self):
        assert template_variables(TEMPLATE) == {"base", "mpi", "fw"}

    def test_preamble_args(self):
        assert template_preamble_args(TEMPLATE) == \
            {"mpi": "openmpi", "fw": None}

    def test_preamble_stops_at_from(self):
        # an ARG after FROM is an ordinary instruction, not a declaration
        text = "FROM a\nARG x=1\nRUN echo hi\n"
        assert template_preamble_args(text) == {}

    def test_duplicate_preamble_arg(self):
        with pytest.raises(BuildError, match="duplicate ARG 'x'"):
            template_preamble_args("ARG x=1\nARG x=2\nFROM a\n")

    def test_render_substitutes_from_and_instructions(self):
        out = render_dockerfile(TEMPLATE,
                                {"base": "centos:7", "fw": "gromacs"})
        assert out == ("FROM centos:7\n"
                       "RUN echo install openmpi\n"
                       "RUN echo build gromacs with openmpi\n")
        parse_dockerfile(out)  # renders to a valid Dockerfile

    def test_render_override_beats_default(self):
        out = render_dockerfile(
            TEMPLATE, {"base": "a", "fw": "x", "mpi": "mpich"})
        assert "install mpich" in out and "openmpi" not in out

    def test_undefined_variable_is_parse_error(self):
        with pytest.raises(BuildError,
                           match=r"line 3: undefined variable \$\{base\}"):
            render_dockerfile(TEMPLATE, {"fw": "x"})

    def test_unused_variable_is_parse_error(self):
        with pytest.raises(BuildError, match="'extra' is never used"):
            render_dockerfile(TEMPLATE, {"base": "a", "fw": "x",
                                         "extra": "y"})

    def test_unused_declared_arg_is_parse_error(self):
        with pytest.raises(BuildError, match="'unused' is never used"):
            render_dockerfile("ARG unused=1\nFROM a\nRUN echo hi\n")

    def test_all_errors_reported_together(self):
        with pytest.raises(BuildError) as exc:
            render_dockerfile("FROM ${base}\nRUN ${cmd}\n", {"junk": "x"})
        msg = str(exc.value)
        assert "${base}" in msg and "${cmd}" in msg and "junk" in msg

    def test_digest_stable_rendering(self):
        """Equal variable values -> byte-identical output, however the
        values were supplied (default vs explicit): the property the
        matrix planner's Merkle keys rely on."""
        via_default = render_dockerfile(TEMPLATE,
                                        {"base": "a", "fw": "x"})
        via_override = render_dockerfile(
            TEMPLATE, {"base": "a", "fw": "x", "mpi": "openmpi"})
        assert via_default == via_override

    def test_no_variables_is_identity_modulo_preamble(self):
        plain = "FROM centos:7\nRUN echo hi\n"
        assert render_dockerfile(plain) == plain


class TestSplitEnvArgs:
    def test_equals_form(self):
        assert split_env_args("A=1 B=two") == [("A", "1"), ("B", "two")]

    def test_quoted_values(self):
        assert split_env_args('MSG="hello world" X=1') == \
            [("MSG", "hello world"), ("X", "1")]

    def test_space_form(self):
        assert split_env_args("PATH /usr/bin:/bin") == \
            [("PATH", "/usr/bin:/bin")]
