"""Cross-cutting property-based tests of the core invariants DESIGN.md
calls out."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.archive import TarArchive
from repro.containers.storage import VfsDriver
from repro.fakeroot import FAKEROOT_CLASSIC, FakerootSyscalls
from repro.kernel import (
    FileType,
    IdMap,
    IdMapEntry,
    Kernel,
    Syscalls,
    UserNamespace,
    make_ext4,
)

_slow = settings(max_examples=25,
                 suppress_health_check=[HealthCheck.too_slow])


def _host_with_alice():
    k = Kernel(make_ext4())
    sys0 = Syscalls(k.init_process)
    sys0.mkdir_p("/home/alice")
    sys0.chown("/home/alice", 1000, 1000)
    return k


# -- chown visibility invariant ------------------------------------------------------

@_slow
@given(uid=st.integers(0, 65535), gid=st.integers(0, 65535))
def test_type2_chown_roundtrips_through_namespace(uid, gid):
    """In a Type II namespace, any successful chown to mapped IDs is
    reflected exactly by in-namespace stat, and the on-disk kernel ID is the
    map image of the namespace ID."""
    k = _host_with_alice()
    proc = k.login(1000, 1000, user="alice", home="/home/alice")
    sys = Syscalls(proc)
    sys.unshare_user()
    helper = Syscalls(k.init_process.fork())
    helper.write_uid_map([IdMapEntry(0, 1000, 1),
                          IdMapEntry(1, 3_000_000, 65535)], target=proc)
    helper.write_gid_map([IdMapEntry(0, 1000, 1),
                          IdMapEntry(1, 4_000_000, 65535)], target=proc)
    sys.write_file("/home/alice/f", b"")
    sys.chown("/home/alice/f", uid, gid)
    st_res = sys.stat("/home/alice/f")
    assert (st_res.st_uid, st_res.st_gid) == (uid, gid)
    ns = proc.cred.userns
    assert st_res.kuid == ns.uid_to_host(uid)
    assert st_res.kgid == ns.gid_to_host(gid)


@_slow
@given(uid=st.integers(1, 65535), gid=st.integers(1, 65535))
def test_type3_chown_nonzero_always_einval(uid, gid):
    """In a single-ID namespace, chown to any ID other than 0 fails EINVAL —
    the Figure 2 mechanism, for every possible target."""
    from repro.errors import Errno, KernelError
    k = _host_with_alice()
    proc = k.login(1000, 1000, user="alice", home="/home/alice")
    sys = Syscalls(proc)
    sys.setup_single_id_userns()
    sys.write_file("/home/alice/f", b"")
    with pytest.raises(KernelError) as exc:
        sys.chown("/home/alice/f", uid, gid)
    assert exc.value.errno == Errno.EINVAL


# -- fakeroot invariants ----------------------------------------------------------------

@_slow
@given(ops=st.lists(
    st.tuples(st.sampled_from(["chown", "chmod", "mknod"]),
              st.integers(0, 70000), st.integers(0, 0o777)),
    min_size=1, max_size=8))
def test_fakeroot_wrapped_view_consistent_and_invisible(ops):
    """Any sequence of faked operations: (1) the wrapper's view reflects the
    last write per field; (2) raw syscalls never see any of it (beyond what
    was really permitted)."""
    k = _host_with_alice()
    raw = Syscalls(k.login(1000, 1000, home="/home/alice"))
    fr = FakerootSyscalls(raw, FAKEROOT_CLASSIC)
    fr.write_file("/home/alice/f", b"")
    last_uid = None
    for op, arg1, arg2 in ops:
        if op == "chown":
            fr.chown("/home/alice/f", arg1, -1)
            last_uid = arg1
        elif op == "chmod":
            fr.chmod("/home/alice/f", arg2)
        else:
            name = f"/home/alice/dev{arg1}"
            if not fr.exists(name):
                fr.mknod(name, FileType.CHR, rdev=(1, arg1 % 256))
    if last_uid is not None:
        assert fr.stat("/home/alice/f").st_uid == last_uid
    assert raw.stat("/home/alice/f").kuid == 1000


# -- archive diff/apply invariant ----------------------------------------------------------

_tree_ops = st.lists(
    st.tuples(st.sampled_from(["write", "mkdir", "delete", "chmod"]),
              st.sampled_from(["a", "b", "c", "d/e", "d/f"]),
              st.binary(max_size=16)),
    max_size=10)


@_slow
@given(ops=_tree_ops)
def test_diff_apply_reconstructs_tree(ops):
    """For any mutation sequence A -> B: apply_diff(diff(A,B), A) == B.
    This is the invariant the overlay driver's layer commits rest on."""
    k = Kernel(make_ext4())
    sys0 = Syscalls(k.init_process)
    for base in ("/t1", "/t2"):
        sys0.mkdir_p(f"{base}/d")
        sys0.write_file(f"{base}/a", b"base-a")
        sys0.write_file(f"{base}/d/e", b"base-e")

    driver = VfsDriver(sys0, "/storage")
    driver._snapshots["/t1"] = {}
    before, _ = driver._diff_since_snapshot("/t1")  # seed snapshot of A

    # mutate /t1 into B
    for op, path, data in ops:
        full = f"/t1/{path}"
        try:
            if op == "write":
                sys0.mkdir_p(full.rsplit("/", 1)[0])
                sys0.write_file(full, data)
            elif op == "mkdir":
                sys0.mkdir_p(full)
            elif op == "delete":
                if sys0.exists(full) and \
                        sys0.lstat(full).ftype is not FileType.DIR:
                    sys0.unlink(full)
            elif op == "chmod":
                if sys0.exists(full):
                    sys0.chmod(full, 0o700)
        except Exception:
            pass

    diff, _ = driver._diff_since_snapshot("/t1")
    # apply the diff onto the untouched copy /t2
    diff.apply_diff(sys0, "/t2")

    a = TarArchive.pack(sys0, "/t1")
    b = TarArchive.pack(sys0, "/t2")
    assert {(m.path, m.ftype, m.data, m.mode & 0o777) for m in a} == \
        {(m.path, m.ftype, m.data, m.mode & 0o777) for m in b}


# -- flatten idempotence over real images ----------------------------------------------------

def test_flatten_idempotent_over_base_image():
    from repro.distro import make_centos7_archive
    archive = make_centos7_archive()
    once = TarArchive([m.flattened() for m in archive])
    twice = TarArchive([m.flattened() for m in once])
    assert list(once) == list(twice)
    assert all((m.uid, m.gid) == (0, 0) and not m.mode & 0o6000
               for m in once)


# -- namespace display/translation duality ------------------------------------------------------

@_slow
@given(kuid=st.integers(0, 2**20))
def test_display_matches_translation(kuid):
    """uid_display(k) is uid_from_host(k) when mapped, 65534 otherwise."""
    ns = UserNamespace(UserNamespace.initial(), 1000, 1000)
    ns.set_uid_map(IdMap([IdMapEntry(0, 1000, 1),
                          IdMapEntry(1, 200000, 65536)]),
                   writer_euid=0, writer_privileged=True)
    inside = ns.uid_from_host(kuid)
    if inside is None:
        assert ns.uid_display(kuid) == 65534
    else:
        assert ns.uid_display(kuid) == inside
        assert ns.uid_to_host(inside) == kuid
