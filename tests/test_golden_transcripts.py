"""Golden-transcript tests for the paper's figure scenarios.

Each test replays one figure under the syscall tracer and compares the
deterministic digest (``repro.obs.export.golden_summary``) against a JSON
file in ``tests/golden/``.  The digests pin down *which* syscall failed
with *which* errno at *which* Dockerfile instruction — the properties the
paper's transcripts exhibit — so a behaviour drift anywhere in the kernel,
fakeroot, or builder layers shows up as a readable JSON diff.

Regenerate after an intentional change with::

    pytest tests/test_golden_transcripts.py --update-golden

and review the golden diff like any other code change.
"""

import pytest

from repro.containers import Podman
from repro.core import ChImage
from repro.obs import attach_tracer, golden_summary

from .conftest import FIG2_DOCKERFILE, FIG3_DOCKERFILE, FIG8_DOCKERFILE


def traced_build(login, alice, dockerfile, *, force=False):
    """Run one ch-image build under a fresh tracer; return (tracer, result)."""
    ch = ChImage(login, alice)
    tracer = attach_tracer(login.kernel)
    result = ch.build(tag="foo", dockerfile=dockerfile, force=force)
    return tracer, result


class TestFailureFigures:
    def test_fig02_centos_type3(self, login, alice, golden_check):
        """Figure 2: chown(2) fails with EINVAL inside the yum install."""
        tracer, result = traced_build(login, alice, FIG2_DOCKERFILE)
        assert not result.success
        digest = golden_summary(tracer)
        failing = digest["failing_instruction"]
        assert failing["lineno"] == 3
        assert failing["text"] == "RUN yum install -y openssh"
        # the paper's cpio: chown failure, errno-accurate
        assert failing["errnos_by_syscall"] == {"chown:EINVAL": 1}
        golden_check("fig02_centos_type3", digest)

    def test_fig03_debian_type3(self, login, alice, golden_check):
        """Figure 3: setgroups EPERM (1) and seteuid EINVAL (22)."""
        tracer, result = traced_build(login, alice, FIG3_DOCKERFILE)
        assert not result.success
        digest = golden_summary(tracer)
        failing = digest["failing_instruction"]
        assert failing["lineno"] == 3
        assert failing["text"] == "RUN apt-get update"
        assert failing["errnos_by_syscall"]["setgroups:EPERM"] == 1
        assert failing["errnos_by_syscall"]["seteuid:EINVAL"] == 2
        golden_check("fig03_debian_type3", digest)

    def test_fig05_podman_unprivileged(self, login, golden_check):
        """Figure 5: single-ID Podman; /proc owned by nobody => EACCES."""
        bob = login.login("bob")
        tracer = attach_tracer(login.kernel)
        podman = Podman(login, bob, unprivileged=True,
                        ignore_chown_errors=True)
        result = podman.build(
            "FROM centos:7\nRUN yum install -y openssh-server\n", "srv")
        assert not result.success
        digest = golden_summary(tracer)
        failing = digest["failing_instruction"]
        assert failing["lineno"] == 2
        assert "EACCES" in failing["errnos"]
        golden_check("fig05_podman_unprivileged", digest)


class TestSuccessFigures:
    def test_fig08_manual_fakeroot(self, login, alice, golden_check):
        """Figure 8: the hand-modified fakeroot Dockerfile succeeds."""
        tracer, result = traced_build(login, alice, FIG8_DOCKERFILE)
        assert result.success, result.text
        digest = golden_summary(tracer)
        assert digest["status"] == "ok"
        assert digest["failing_instruction"] is None
        assert len(digest["instructions"]) == 5
        golden_check("fig08_manual_fakeroot", digest)

    def test_fig10_force_centos(self, login, alice, golden_check):
        """Figure 10: --force absorbs the Fig. 2 chown inside fakeroot."""
        tracer, result = traced_build(login, alice, FIG2_DOCKERFILE,
                                      force=True)
        assert result.success, result.text
        digest = golden_summary(tracer)
        assert digest["status"] == "ok"
        assert digest["meta"]["force"] is True
        # the chown that failed in fig02 now happens under fakeroot and
        # never reaches the kernel as an error at the top level
        yum = digest["instructions"][-1]
        assert yum["status"] == "ok"
        assert "chown:EINVAL" not in yum["errnos_by_syscall"]
        golden_check("fig10_force_centos", digest)

    def test_fig11_force_debian(self, login, alice, golden_check):
        """Figure 11: --force with debderiv config, 2 modified RUNs."""
        tracer, result = traced_build(login, alice, FIG3_DOCKERFILE,
                                      force=True)
        assert result.success, result.text
        assert result.modified_runs == 2
        digest = golden_summary(tracer)
        assert digest["status"] == "ok"
        # the fig03 errnos are gone: apt-get runs sandboxless + fakeroot
        for inst in digest["instructions"]:
            assert "setgroups:EPERM" not in inst["errnos_by_syscall"]
        golden_check("fig11_force_debian", digest)


class TestGoldenDeterminism:
    def test_two_runs_identical(self, world):
        """Two fresh worlds produce byte-identical digests (the property
        that makes the golden files stable across machines and runs)."""
        from repro.cluster import make_machine, make_world
        from repro.obs.export import dump_golden

        texts = []
        for _ in range(2):
            w = make_world(arches=("x86_64",))
            login = make_machine("login1", network=w.network)
            alice = login.login("alice")
            tracer, result = traced_build(login, alice, FIG2_DOCKERFILE,
                                          force=True)
            assert result.success
            texts.append(dump_golden(golden_summary(tracer)))
        assert texts[0] == texts[1]
