"""The deterministic engine profiler: category counts and virtual-time
attribution that replay identically and never perturb the schedule."""

import functools

from repro.sim import EngineProfile, SimEngine, category_of


class TestCategoryOf:
    def test_function_qualname(self):
        def handler():
            pass
        assert category_of(handler) == \
            "TestCategoryOf.test_function_qualname.<locals>.handler"

    def test_bound_method_qualname(self):
        class Cast:
            def serve(self):
                pass
        assert category_of(Cast().serve).endswith("Cast.serve")

    def test_partial_unwraps_to_the_inner_callable(self):
        def handler(a, b):
            pass
        wrapped = functools.partial(functools.partial(handler, 1), 2)
        assert category_of(wrapped).endswith("handler")

    def test_callable_instance_falls_back_to_type_name(self):
        class Ticker:
            def __call__(self):
                pass
        assert category_of(Ticker()) == "Ticker"


class TestEngineProfile:
    def test_counts_and_virtual_time_by_category(self):
        p = EngineProfile()

        def a():
            pass

        def b():
            pass
        p.record(a, 1.5)
        p.record(a, 0.5)
        p.record(b, 3.0)
        cat_a, cat_b = category_of(a), category_of(b)
        assert p.events == {cat_a: 2, cat_b: 1}
        assert p.total_events == 3
        assert p.virtual_seconds[cat_a] == 2.0
        assert p.total_virtual_seconds == 5.0

    def test_non_advancing_events_count_but_attribute_no_time(self):
        p = EngineProfile()

        def a():
            pass
        p.record(a, 0.0)
        p.record(a, -1e-9)   # scheduled at-or-before now: clamp to zero
        assert p.total_events == 2
        assert p.total_virtual_seconds == 0.0
        assert category_of(a) not in p.virtual_seconds

    def test_top_is_deterministic(self):
        p = EngineProfile()
        for name in ("beta", "alpha", "gamma", "alpha", "beta"):
            p.events[name] = p.events.get(name, 0) + 1
            p.total_events += 1
        # count-desc, then name: the tie between alpha and beta sorts
        # alphabetically every run
        assert p.top(2) == [("alpha", 2), ("beta", 2)]
        assert p.top() == [("alpha", 2), ("beta", 2), ("gamma", 1)]

    def test_as_dict_is_sorted_and_json_friendly(self):
        p = EngineProfile()

        def z():
            pass

        def a():
            pass
        p.record(z, 0.1)
        p.record(a, 0.2)
        d = p.as_dict()
        assert list(d["events"]) == sorted(d["events"])
        assert d["total_events"] == 2
        assert d["total_virtual_seconds"] == round(0.1 + 0.2, 9)
        assert "EngineProfile" in repr(p)


class TestEngineIntegration:
    def test_profile_rides_the_run_loop(self):
        profile = EngineProfile()
        engine = SimEngine(profile=profile)
        seen = []

        class Job:
            def tick(self, n):
                seen.append(n)
                if n < 3:
                    engine.after(2.0, self.tick, n + 1)

        job = Job()
        engine.at(1.0, job.tick, 1)
        engine.at(1.0, job.tick, 3)   # same-timestamp: advances nothing
        engine.run()
        assert seen == [1, 3, 2, 3]
        assert profile.events == {"TestEngineIntegration."
                                  "test_profile_rides_the_run_loop."
                                  "<locals>.Job.tick": 4}
        # 0->1 advance + the two after(2.0) hops; the equal-time event
        # contributes no virtual time
        assert profile.total_virtual_seconds == 5.0
        assert profile.total_events == engine.events_processed == 4

    def test_profiling_does_not_change_the_schedule(self):
        def run(profile):
            engine = SimEngine(profile=profile)
            order = []
            engine.at(2.0, order.append, "b")
            engine.at(1.0, order.append, "a")
            engine.at(1.0, order.append, "a2")
            end = engine.run()
            return order, end

        bare = run(None)
        profiled = run(EngineProfile())
        assert bare == profiled
