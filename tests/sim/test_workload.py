"""The seeded open-loop workload generator.

Statistical shape (Poisson arrival rate, Zipf popularity ordering,
tenant mix) plus the determinism contract the fault matrix leans on: the
same spec always produces the same tape, byte for byte.
"""

import pytest

from repro.sim import (
    WorkloadError,
    WorkloadSpec,
    generate_requests,
    zipf_weights,
)
from repro.sim.workload import _percentile

SPEC = WorkloadSpec(seed=42, rate=100.0, duration=20.0, zipf_s=1.2,
                    images=[f"app:v{i}" for i in range(8)],
                    tenants=[("alice", 3.0), ("bob", 1.0)])


class TestDeterminism:
    def test_same_spec_same_tape(self):
        a = [r.as_dict() for r in generate_requests(SPEC)]
        b = [r.as_dict() for r in generate_requests(SPEC)]
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_requests(SPEC)
        b = generate_requests(WorkloadSpec(
            seed=43, rate=SPEC.rate, duration=SPEC.duration,
            zipf_s=SPEC.zipf_s, images=SPEC.images, tenants=SPEC.tenants))
        assert [r.at for r in a] != [r.at for r in b]

    def test_arrivals_sorted_and_in_window(self):
        reqs = generate_requests(SPEC)
        times = [r.at for r in reqs]
        assert times == sorted(times)
        assert 0 < times[0] and times[-1] < SPEC.duration


class TestShape:
    def test_poisson_mean_rate(self):
        reqs = generate_requests(SPEC)
        # ~2000 expected; 3-sigma of a Poisson(2000) is ~134
        assert abs(len(reqs) - SPEC.rate * SPEC.duration) < 200

    def test_zipf_popularity_is_rank_monotone(self):
        reqs = generate_requests(SPEC)
        counts = [0] * len(SPEC.images)
        for r in reqs:
            counts[SPEC.images.index(r.image.split("/", 1)[1])] += 1
        # hottest rank clearly beats the coldest; top beats median
        assert counts[0] > counts[-1]
        assert counts[0] > counts[len(counts) // 2]

    def test_tenant_mix_tracks_weights(self):
        reqs = generate_requests(SPEC)
        alice = sum(r.tenant == "alice" for r in reqs)
        bob = len(reqs) - alice
        assert bob > 0
        assert 2.0 < alice / bob < 4.5   # weight ratio 3.0 +/- sampling

    def test_tokens_ride_along(self):
        spec = WorkloadSpec(seed=1, rate=50, duration=1.0,
                            images=["app:v0"],
                            tenants=[("alice", 1.0)],
                            tokens={"alice": "tok-a"})
        assert all(r.token == "tok-a" for r in generate_requests(spec))

    def test_refs_enumerates_tenant_x_image(self):
        assert WorkloadSpec(images=["a:v0", "b:v0"],
                            tenants=[("t1", 1.0), ("t2", 1.0)]).refs() == \
            ["t1/a:v0", "t1/b:v0", "t2/a:v0", "t2/b:v0"]


class TestValidation:
    def test_bad_specs_raise(self):
        with pytest.raises(WorkloadError):
            generate_requests(WorkloadSpec(rate=0))
        with pytest.raises(WorkloadError):
            generate_requests(WorkloadSpec(duration=0))
        with pytest.raises(WorkloadError):
            generate_requests(WorkloadSpec(images=()))
        with pytest.raises(WorkloadError):
            generate_requests(WorkloadSpec(tenants=[("a", 0.0)]))
        with pytest.raises(WorkloadError):
            zipf_weights(0, 1.0)

    def test_zipf_weights_decrease(self):
        w = zipf_weights(10, 1.1)
        assert w == sorted(w, reverse=True)
        assert w[0] == 1.0

    def test_percentile_nearest_rank(self):
        vals = [float(i) for i in range(1, 101)]
        assert _percentile(vals, 0.50) == 50.0
        assert _percentile(vals, 0.99) == 99.0
        assert _percentile([], 0.99) == 0.0
        assert _percentile([7.0], 0.50) == 7.0
