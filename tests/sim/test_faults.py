"""Deterministic fault injection: seeded plans, retry/backoff, and the
rollback guarantees retried transfers depend on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, TransientError
from repro.sim import (
    FaultPlan,
    FaultPlanError,
    NetLink,
    RetryPolicy,
    SimClock,
    TransientTransferError,
    faulty_transmit,
    link_restore,
    link_snapshot,
    retry_call,
    transmit,
)


def links(n, *, bandwidth=100.0, latency=0.0):
    return [NetLink(f"l{i}", bandwidth=bandwidth, latency=latency)
            for i in range(n)]


class TestFaultPlanParse:
    def test_explicit_tokens(self):
        plan = FaultPlan.parse(
            "seed=7,horizon=2.0,link-loss=0.25,down=cn1@0.1:0.2,"
            "slow=cn2@0.0:1.0*0.5,crash=cn3@0.4,flake=0.0:0.05,"
            "worker-crash=1@0.3")
        assert plan.seed == 7 and plan.horizon == 2.0
        assert plan.link_loss == 0.25
        assert plan.down_window("cn1", 0.15, 0.18) == (0.1, 0.2)
        assert plan.bandwidth_factor("cn2", 0.5) == 0.5
        assert plan.crash_time("cn3") == 0.4
        assert plan.flake_window(0.01) == (0.0, 0.05)
        assert plan.worker_crash_time(1) == 0.3

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse(None).empty
        assert FaultPlan.parse("").empty
        assert not FaultPlan.parse("down=cn1@0:1").empty

    def test_bad_tokens_rejected(self):
        for spec in ("bogus=1", "no-equals", "down=cn1@x:y",
                     "flake=1.0:0.5", "slow=cn1@0:1*2.0"):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(spec)

    def test_fault_plan_error_is_a_repro_error(self):
        assert issubclass(FaultPlanError, ReproError)


class TestFaultPlanBind:
    def test_bind_is_order_independent(self):
        names = [f"cn{i}" for i in range(12)]
        a = FaultPlan(seed=3, link_loss=0.5, slow_rate=0.5,
                      crash_rate=0.3).bind(names)
        b = FaultPlan(seed=3, link_loss=0.5, slow_rate=0.5,
                      crash_rate=0.3).bind(reversed(names))
        assert a.as_dict() == b.as_dict()

    def test_bind_is_idempotent(self):
        plan = FaultPlan(seed=3, link_loss=1.0)
        plan.bind(["cn0"]).bind(["cn0"])
        assert len(plan.as_dict()["down"]["cn0"]) == 1

    def test_different_seeds_differ(self):
        names = [f"cn{i}" for i in range(16)]
        a = FaultPlan(seed=1, link_loss=0.5).bind(names)
        b = FaultPlan(seed=2, link_loss=0.5).bind(names)
        assert a.as_dict() != b.as_dict()

    def test_registry_never_crashes(self):
        plan = FaultPlan(seed=5, crash_rate=1.0, flake_rate=1.0)
        plan.bind_registry("site")
        assert plan.crash_time("site") is None
        assert plan.as_dict()["flakes"]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32), n=st.integers(1, 20))
    def test_every_seeded_plan_replays_byte_identical(self, seed, n):
        """The replayability contract: same seed + same name set means a
        byte-identical schedule, however many times it is materialized."""
        names = [f"cn{i:03d}" for i in range(n)]
        def build():
            return (FaultPlan(seed=seed, link_loss=0.4, slow_rate=0.3,
                              crash_rate=0.2, flake_rate=0.5)
                    .bind(names).bind_registry("site").as_dict())
        assert build() == build()


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        p = RetryPolicy(seed=9)
        assert p.backoff(3, "push") == p.backoff(3, "push")
        assert p.backoff(3, "push") != p.backoff(3, "pull")

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.5,
                        jitter=0.0)
        delays = [p.backoff(a) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_bounded(self):
        p = RetryPolicy(base_delay=1.0, factor=1.0, max_delay=1.0,
                        jitter=0.25, seed=4)
        for attempt in range(20):
            d = p.backoff(attempt, "k")
            assert 0.75 <= d <= 1.25


class TestFaultyTransmit:
    def test_no_plan_matches_plain_transmit(self):
        a1, b1 = links(2)
        a2, b2 = links(2)
        t1 = transmit(a1, b1, 500, chunk_size=100, available=0.0)
        t2 = faulty_transmit(None, a2, b2, 500, chunk_size=100,
                             available=0.0)
        assert (t1.start, t1.end) == (t2.start, t2.end)
        assert link_snapshot(a1) == link_snapshot(a2)

    def test_down_window_aborts_and_rolls_back(self):
        a, b = links(2)
        before_a, before_b = link_snapshot(a), link_snapshot(b)
        plan = FaultPlan().add_link_down("l1", 0.0, 10.0)
        with pytest.raises(TransientTransferError) as exc:
            faulty_transmit(plan, a, b, 500, chunk_size=100, available=0.0)
        assert exc.value.retry_at == 10.0
        # a retry must not see the aborted attempt's bytes or reservations
        assert link_snapshot(a) == before_a
        assert link_snapshot(b) == before_b

    def test_transfer_outside_window_succeeds(self):
        a, b = links(2)
        plan = FaultPlan().add_link_down("l1", 50.0, 60.0)
        t = faulty_transmit(plan, a, b, 500, chunk_size=100, available=0.0)
        assert t.end == pytest.approx(5.0)
        assert a.stats.bytes_tx == 500

    def test_slow_window_stretches_the_transfer(self):
        a, b = links(2)
        plan = FaultPlan().add_slow_link("l0", 0.0, 100.0, 0.5)
        t = faulty_transmit(plan, a, b, 500, chunk_size=100,
                            available=0.0, now=0.0)
        assert t.end == pytest.approx(10.0)  # half bandwidth, double time
        # the degradation is transient: bandwidth itself is restored
        assert a.bandwidth == 100.0

    def test_attempt_timeout_aborts_with_rollback(self):
        a, b = links(2)
        before = link_snapshot(a)
        plan = FaultPlan().add_slow_link("l0", 0.0, 100.0, 0.1)
        with pytest.raises(TransientTransferError):
            faulty_transmit(plan, a, b, 500, chunk_size=100,
                            available=0.0, now=0.0, attempt_timeout=20.0)
        assert link_snapshot(a) == before

    def test_link_restore_round_trip(self):
        a, b = links(2)
        snap = link_snapshot(a)
        stats = a.stats
        transmit(a, b, 300, chunk_size=100, available=0.0)
        assert a.stats.bytes_tx == 300
        link_restore(a, snap)
        assert a.stats.bytes_tx == 0
        assert a.stats is stats  # restored in place, not replaced


class TestRetryCall:
    def test_retries_until_success_advancing_the_clock(self):
        clock = SimClock()
        fails = {"n": 3}
        seen = []

        def op(attempt):
            if fails["n"]:
                fails["n"] -= 1
                raise TransientError("flaky", retry_at=0.2)
            return "done"

        result = retry_call(
            op, policy=RetryPolicy(budget=5, jitter=0.0, base_delay=0.01),
            clock=clock, key="t",
            on_retry=lambda a, d, e: seen.append(a))
        assert result == "done"
        assert seen == [0, 1, 2]
        assert clock.now >= 0.2  # waited out the fault window

    def test_budget_exhaustion_reraises(self):
        def op(attempt):
            raise TransientError("always down")

        with pytest.raises(TransientError):
            retry_call(op, policy=RetryPolicy(budget=2, jitter=0.0,
                                              base_delay=0.01))

    def test_non_transient_errors_pass_through(self):
        def op(attempt):
            raise ValueError("real bug")

        with pytest.raises(ValueError):
            retry_call(op, policy=RetryPolicy(budget=5))
