"""Property tests pinning the closed-form bulk transmit to the loop.

The optimized engine's whole correctness story rests on one contract:
for scalar availability, :func:`repro.sim.transmit` (the closed-form
bulk path) returns **bit-identical** floats to
:func:`repro.sim.transmit_reference` (the per-chunk loop) — the same
``TransferTiming``, the same ``LinkStats`` increments, the same FIFO
horizons.  Not approximately equal: ``==`` on every float, across
random sizes, chunk sizes, asymmetric bandwidths and latencies, busy
link horizons, and pre-seeded stats.  If an optimization ever drifts by
an ulp, these tests — not a golden transcript three layers up — are
what fails.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import LinkStats, NetLink, transmit, transmit_reference

# Times/horizons: non-negative, spanning many exponents so float
# rounding differences would surface; finite by construction.
times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                  allow_infinity=False)
bandwidths = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False,
                       allow_infinity=False)
latencies = st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
                      allow_infinity=False)
seeded = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


def _link(name, bw, lat, tx_free, rx_free, pre):
    link = NetLink(name, bandwidth=bw, latency=lat)
    link.tx_free_at = tx_free
    link.rx_free_at = rx_free
    # pre-seeded accounting: the += aggregation must commute identically
    link.stats.byte_seconds = pre
    link.stats.busy_tx_seconds = pre / 2
    link.stats.busy_rx_seconds = pre / 3
    return link


def _pair(params):
    (bw_a, bw_b, lat_a, lat_b, tx_free, rx_free, pre) = params
    a = _link("a", bw_a, lat_a, tx_free, 0.0, pre)
    b = _link("b", bw_b, lat_b, 0.0, rx_free, pre)
    return a, b


link_params = st.tuples(bandwidths, bandwidths, latencies, latencies,
                        times, times, seeded)


@settings(max_examples=200, deadline=None)
@given(size=st.integers(min_value=0, max_value=200_000),
       chunk_size=st.integers(min_value=1, max_value=8192),
       ready=times, params=link_params)
def test_bulk_transmit_is_bit_identical_to_the_loop(size, chunk_size,
                                                    ready, params):
    a, b = _pair(params)
    c, d = _pair(params)
    fast = transmit(a, b, size, chunk_size=chunk_size, available=ready)
    slow = transmit_reference(c, d, size, chunk_size=chunk_size,
                              available=ready)
    # dataclass equality is field-exact float equality
    assert fast == slow
    assert a.stats == c.stats
    assert b.stats == d.stats
    assert (a.tx_free_at, a.rx_free_at) == (c.tx_free_at, c.rx_free_at)
    assert (b.tx_free_at, b.rx_free_at) == (d.tx_free_at, d.rx_free_at)


@settings(max_examples=100, deadline=None)
@given(size=st.integers(min_value=1, max_value=200_000),
       chunk_size=st.integers(min_value=1, max_value=8192),
       ready=times, params=link_params)
def test_coalesced_transmit_only_drops_the_arrival_list(size, chunk_size,
                                                        ready, params):
    """record_arrivals=False (the coalescing fast path) must be a pure
    memory optimization: identical endpoints, horizons, and stats."""
    a, b = _pair(params)
    c, d = _pair(params)
    full = transmit(a, b, size, chunk_size=chunk_size, available=ready)
    lean = transmit(c, d, size, chunk_size=chunk_size, available=ready,
                    record_arrivals=False)
    assert lean.chunk_arrivals is None
    assert full.chunk_arrivals is not None
    assert full.chunk_arrivals[0] == full.first_arrival
    assert full.chunk_arrivals[-1] == full.end
    assert (lean.size, lean.start, lean.end, lean.first_arrival) == \
           (full.size, full.start, full.end, full.first_arrival)
    assert a.stats == c.stats and b.stats == d.stats
    assert (a.tx_free_at, b.rx_free_at) == (c.tx_free_at, d.rx_free_at)


@settings(max_examples=100, deadline=None)
@given(size=st.integers(min_value=1, max_value=50_000),
       chunk_size=st.integers(min_value=1, max_value=4096),
       readies=st.lists(times, min_size=1, max_size=8),
       params=link_params)
def test_sequence_availability_stays_on_the_reference_loop(size,
                                                           chunk_size,
                                                           readies,
                                                           params):
    """A pipelined relay (per-chunk availability) has no closed form;
    transmit must route it through the loop and agree with
    transmit_reference trivially — guarding against a future 'bulk for
    sequences too' change that silently breaks pipelining."""
    from repro.sim import chunk_sizes as split
    n = len(split(size, chunk_size))
    avail = [readies[i % len(readies)] for i in range(n)]
    a, b = _pair(params)
    c, d = _pair(params)
    fast = transmit(a, b, size, chunk_size=chunk_size, available=avail)
    slow = transmit_reference(c, d, size, chunk_size=chunk_size,
                              available=avail)
    assert fast == slow
    assert a.stats == c.stats and b.stats == d.stats


@settings(max_examples=50, deadline=None)
@given(params=link_params, ready=times)
def test_zero_size_clamps_to_horizons_on_both_paths(params, ready):
    a, b = _pair(params)
    c, d = _pair(params)
    fast = transmit(a, b, 0, chunk_size=64, available=ready)
    slow = transmit_reference(c, d, 0, chunk_size=64, available=ready)
    assert fast == slow
    assert fast.start == fast.end == max(ready, a.tx_free_at,
                                         b.rx_free_at)
    assert isinstance(a.stats, LinkStats) and a.stats == c.stats
