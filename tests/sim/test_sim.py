"""The discrete-event substrate: virtual clock, event queue, and the
chunked/pipelined transfer cost model the deploy broadcast rides on."""

import pytest

from repro.errors import ReproError
from repro.sim import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    EventQueue,
    LinkStats,
    NetLink,
    ReferenceEventQueue,
    SimClock,
    SimEngine,
    SimError,
    Topology,
    TopologyError,
    TransferTiming,
    chunk_sizes,
    optimizations_enabled,
    reference_engine,
    set_optimizations,
    transmit,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_to_is_monotone(self):
        c = SimClock()
        assert c.advance_to(5.0) == 5.0
        assert c.advance_to(3.0) == 5.0  # never rewinds
        assert c.now == 5.0

    def test_advance_delta(self):
        c = SimClock(start=1.0)
        assert c.advance(0.5) == 1.5
        with pytest.raises(ValueError):
            c.advance(-0.1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop()[0] for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_fifo_within_equal_timestamps(self):
        q = EventQueue()
        for tag in ("first", "second", "third"):
            q.push(1.0, tag)
        assert [q.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_peek_len_bool(self):
        q = EventQueue()
        assert q.peek_time() is None and not q and len(q) == 0
        q.push(4.0, "x")
        assert q.peek_time() == 4.0 and q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimError):
            EventQueue().push(-1.0, "x")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_time_rejected(self, bad):
        """Regression: a NaN timestamp compares false against everything,
        so it used to corrupt heap order silently instead of failing."""
        with pytest.raises(SimError, match="non-finite"):
            EventQueue().push(bad, "x")
        with pytest.raises(SimError, match="non-finite"):
            ReferenceEventQueue().push(bad, "x")
        with pytest.raises(SimError, match="non-finite"):
            SimEngine().at(bad, lambda: None)

    def test_same_timestamp_flood_stays_fifo(self):
        """The bucket fast path: a flood of equal-time events drains in
        push order, interleaved correctly with distinct-time events."""
        q = EventQueue()
        q.push(2.0, "late")
        for i in range(1000):
            q.push(1.0, i)
        q.push(0.5, "early")
        assert len(q) == 1002
        assert q.peek_time() == 0.5
        got = [q.pop() for _ in range(1002)]
        assert got[0] == (0.5, "early", ())
        assert [fn for _, fn, _ in got[1:-1]] == list(range(1000))
        assert got[-1] == (2.0, "late", ())
        assert not q and q.peek_time() is None

    def test_bucket_queue_matches_reference_queue(self):
        """Both queue implementations pop the exact same sequence for
        the same pushes — the ablation's ordering contract."""
        pushes = [(1.0, "a"), (3.0, "b"), (1.0, "c"), (2.0, "d"),
                  (1.0, "e"), (3.0, "f"), (0.0, "g"), (2.0, "h")]
        fast, ref = EventQueue(), ReferenceEventQueue()
        drained = []
        for i, (t, tag) in enumerate(pushes):
            fast.push(t, tag)
            ref.push(t, tag)
            if i % 3 == 2:          # interleave pops with pushes
                drained.append((fast.pop(), ref.pop()))
        while fast:
            drained.append((fast.pop(), ref.pop()))
        assert not ref
        for got_fast, got_ref in drained:
            assert got_fast == got_ref


class TestSimEngine:
    def test_fires_in_order_and_advances_clock(self):
        e = SimEngine()
        seen = []
        e.at(2.0, lambda: seen.append(("b", e.now)))
        e.at(1.0, lambda: seen.append(("a", e.now)))
        end = e.run()
        assert seen == [("a", 1.0), ("b", 2.0)]
        assert end == 2.0 and e.events_processed == 2

    def test_callbacks_chain_further_events(self):
        e = SimEngine()
        seen = []

        def hop(n):
            seen.append((n, e.now))
            if n < 3:
                e.after(1.0, hop, n + 1)

        e.at(0.0, hop, 1)
        e.run()
        assert seen == [(1, 0.0), (2, 1.0), (3, 2.0)]

    def test_after_is_relative_to_now(self):
        e = SimEngine()
        e.clock.advance_to(5.0)
        fired = []
        e.after(1.0, fired.append, "x")
        e.run()
        assert fired == ["x"] and e.now == 6.0
        with pytest.raises(SimError):
            e.after(-1.0, fired.append, "y")

    def test_run_until_stops_before_later_events(self):
        e = SimEngine()
        fired = []
        e.at(1.0, fired.append, "early")
        e.at(10.0, fired.append, "late")
        assert e.run(until=5.0) == 5.0
        assert fired == ["early"]
        assert len(e.queue) == 1  # the late event survives
        e.run()
        assert fired == ["early", "late"]

    def test_sim_error_is_a_repro_error(self):
        assert issubclass(SimError, ReproError)


class TestChunkSizes:
    @pytest.mark.parametrize("size,chunk,expect", [
        (0, 100, []),
        (-5, 100, []),
        (50, 100, [50]),
        (100, 100, [100]),
        (250, 100, [100, 100, 50]),
    ])
    def test_split(self, size, chunk, expect):
        assert chunk_sizes(size, chunk) == expect


def links(n, *, bandwidth=100.0, latency=0.0):
    return [NetLink(f"l{i}", bandwidth=bandwidth, latency=latency)
            for i in range(n)]


class TestTransmit:
    def test_duration_is_wire_time_plus_latencies(self):
        a, b = links(2, bandwidth=100.0, latency=0.05)
        t = transmit(a, b, 1000, chunk_size=100, available=0.0)
        # 10 chunks x 1 s wire, plus one-way latency at each endpoint
        assert t.end == pytest.approx(10.0 + 0.1)
        assert t.start == 0.0
        assert t.chunk_arrivals == pytest.approx(
            [i + 1 + 0.1 for i in range(10)])
        assert t.duration == pytest.approx(t.end - t.start)

    def test_sender_serializes_fifo(self):
        a, b, c = links(3)
        t1 = transmit(a, b, 500, chunk_size=100, available=0.0)
        t2 = transmit(a, c, 500, chunk_size=100, available=0.0)
        assert t1.end == pytest.approx(5.0)
        # a's transmit side was busy until t=5, so the second transfer queues
        assert t2.start == pytest.approx(5.0)
        assert t2.end == pytest.approx(10.0)

    def test_full_duplex_directions_do_not_contend(self):
        a, b = links(2)
        t1 = transmit(a, b, 500, chunk_size=100, available=0.0)
        t2 = transmit(b, a, 500, chunk_size=100, available=0.0)
        assert t1.end == pytest.approx(5.0)
        assert t2.end == pytest.approx(5.0)  # the reverse path was idle

    def test_pipelined_relay_overlaps_receive_and_resend(self):
        a, b, c = links(3)
        t1 = transmit(a, b, 1000, chunk_size=100, available=0.0)
        # b re-serves each chunk as it lands: one chunk of extra makespan,
        # not a full store-and-forward copy (which would end at 20 s)
        t2 = transmit(b, c, 1000, chunk_size=100,
                      available=t1.chunk_arrivals)
        assert t1.end == pytest.approx(10.0)
        assert t2.end == pytest.approx(11.0)

    def test_rate_is_bottleneck_of_both_ends(self):
        a, b = links(2)
        b.bandwidth = 50.0
        t = transmit(a, b, 500, chunk_size=100, available=0.0)
        assert t.end == pytest.approx(10.0)  # 500 B at 50 B/s

    def test_availability_length_must_match_chunks(self):
        a, b = links(2)
        with pytest.raises(ValueError):
            transmit(a, b, 500, chunk_size=100, available=[0.0, 0.0])

    def test_zero_size_is_a_no_op(self):
        a, b = links(2)
        t = transmit(a, b, 0, chunk_size=100, available=3.0)
        assert t.size == 0 and t.start == t.end == 3.0
        assert a.stats.bytes_tx == 0

    def test_zero_size_waits_for_busy_links(self):
        """Regression: an empty blob used to 'complete' while the link
        was still busy with in-flight traffic — zero-size sends must
        queue behind the FIFO horizons like any other transfer."""
        a, b = links(2)
        transmit(a, b, 500, chunk_size=100, available=0.0)  # busy to t=5
        t = transmit(a, b, 0, chunk_size=100, available=0.0)
        assert t.start == t.end == 5.0
        # the receive horizon alone also delays it
        c, d = links(2)
        d.rx_free_at = 7.0
        t = transmit(c, d, 0, chunk_size=100, available=2.0)
        assert t.start == t.end == 7.0
        assert t.chunk_arrivals == []

    def test_zero_size_with_sequence_availability(self):
        """Regression: a relayed zero-size hop used to report itself done
        at t=0 even though its source data only existed at max(avail)."""
        a, b = links(2)
        t = transmit(a, b, 0, chunk_size=100, available=[2.0, 5.0, 1.0])
        assert t.size == 0 and t.start == t.end == 5.0
        t = transmit(a, b, 0, chunk_size=100, available=[])
        assert t.start == t.end == 0.0

    def test_first_arrival_is_first_chunk_landing(self):
        a, b = links(2, bandwidth=100.0, latency=0.05)
        t = transmit(a, b, 1000, chunk_size=100, available=0.0)
        assert t.first_arrival == t.chunk_arrivals[0] == pytest.approx(1.1)
        # and for a sub-chunk blob the only chunk is both first and last
        t = transmit(a, b, 50, chunk_size=100, available=0.0)
        assert t.first_arrival == t.end == t.chunk_arrivals[0]

    def test_coalesced_transfer_skips_the_arrival_list(self):
        """record_arrivals=False must change nothing but chunk_arrivals."""
        a, b = links(2, latency=0.01)
        c, d = links(2, latency=0.01)
        full = transmit(a, b, 950, chunk_size=100, available=2.0)
        lean = transmit(c, d, 950, chunk_size=100, available=2.0,
                        record_arrivals=False)
        assert lean.chunk_arrivals is None
        assert full.chunk_arrivals is not None
        assert (lean.size, lean.start, lean.end, lean.first_arrival) == \
               (full.size, full.start, full.end, full.first_arrival)
        assert c.stats == a.stats and d.stats == b.stats
        assert isinstance(full, TransferTiming)

    def test_bulk_path_matches_reference_loop(self):
        """Smoke-level bit-identity (the Hypothesis suite in
        test_transfer_property.py covers the full input space)."""
        prev = set_optimizations(True)       # force the bulk path
        try:
            assert optimizations_enabled()
            a, b = links(2, bandwidth=77.0, latency=0.003)
            b.bandwidth = 31.0
            fast = transmit(a, b, 12345, chunk_size=1000, available=1.5)
        finally:
            set_optimizations(prev)
        with reference_engine():
            c, d = links(2, bandwidth=77.0, latency=0.003)
            d.bandwidth = 31.0
            assert not optimizations_enabled()
            slow = transmit(c, d, 12345, chunk_size=1000, available=1.5)
        assert fast == slow                  # dataclass: field-exact
        assert a.stats == c.stats == LinkStats(
            bytes_tx=12345, chunks_tx=13,
            busy_tx_seconds=a.stats.busy_tx_seconds,
            byte_seconds=a.stats.byte_seconds)
        assert b.stats == d.stats
        assert (a.tx_free_at, b.rx_free_at) == (c.tx_free_at, d.rx_free_at)

    def test_stats_account_both_sides(self):
        a, b = links(2, latency=0.05)
        transmit(a, b, 250, chunk_size=100, available=0.0)
        assert a.stats.bytes_tx == 250 and a.stats.chunks_tx == 3
        assert b.stats.bytes_rx == 250 and b.stats.chunks_rx == 3
        assert a.stats.busy_tx_seconds == pytest.approx(2.5)
        assert b.stats.busy_rx_seconds == pytest.approx(2.5)
        assert a.stats.byte_seconds > 0
        assert a.stats.as_dict()["bytes_tx"] == 250


class TestNetLink:
    def test_bad_parameters_rejected(self):
        with pytest.raises(TopologyError):
            NetLink("x", bandwidth=0)
        with pytest.raises(TopologyError):
            NetLink("x", latency=-1.0)

    def test_reset_time_keeps_stats(self):
        a, b = links(2)
        transmit(a, b, 100, chunk_size=100, available=0.0)
        assert a.tx_free_at > 0 and a.utilization_window > 0
        a.reset_time()
        assert a.tx_free_at == 0.0 and a.rx_free_at == 0.0
        assert a.stats.bytes_tx == 100  # traffic accounting survives


class TestTopology:
    def test_add_is_idempotent(self):
        topo = Topology()
        link = topo.add("cn1", bandwidth=10.0)
        assert topo.add("cn1") is link
        assert link.bandwidth == 10.0
        assert topo.has("cn1") and not topo.has("cn2")

    def test_defaults_apply(self):
        link = Topology().add("cn1")
        assert link.bandwidth == DEFAULT_BANDWIDTH
        assert link.latency == DEFAULT_LATENCY

    def test_attach_infers_hostname_or_name(self):
        class Host:
            hostname = "cn1"

        class Service:
            name = "registry"

        topo = Topology()
        host, svc = Host(), Service()
        assert topo.attach(host) is topo.link("cn1")
        assert topo.attach(svc) is topo.link("registry")
        assert host.netlink.name == "cn1"
        assert svc.netlink.name == "registry"

    def test_attach_nameless_object_rejected(self):
        with pytest.raises(TopologyError):
            Topology().attach(object())

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(TopologyError):
            Topology().link("nope")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(TopologyError):
            Topology(chunk_size=0)

    def test_utilization_is_sorted_and_json_friendly(self):
        topo = Topology(bandwidth=100.0, latency=0.0)
        b = topo.add("b")
        a = topo.add("a")
        transmit(a, b, 100, chunk_size=100, available=0.0)
        util = topo.utilization()
        assert list(util) == ["a", "b"]
        assert util["a"]["bytes_tx"] == 100
        assert util["b"]["bytes_rx"] == 100

    def test_reset_time_covers_all_links(self):
        topo = Topology(bandwidth=100.0, latency=0.0)
        a, b = topo.add("a"), topo.add("b")
        transmit(a, b, 100, chunk_size=100, available=0.0)
        topo.reset_time()
        assert a.tx_free_at == 0.0 and b.rx_free_at == 0.0
