"""Network scoping tests: offline machines, blocked prefixes, registries."""

import pytest

from repro.containers import Registry
from repro.core import ChImage
from repro.distro import make_universe
from repro.errors import PackageError, RegistryError
from repro.net import Network


class TestNetwork:
    def test_offline_repo(self):
        net = Network(universe=make_universe(), online=False)
        with pytest.raises(PackageError) as exc:
            net.repo("centos7/base-x86_64")
        assert "unreachable" in str(exc.value)

    def test_offline_registry(self):
        net = Network(registries={"docker.io": Registry("docker.io")},
                      online=False)
        with pytest.raises(RegistryError):
            net.registry("docker.io")

    def test_no_universe(self):
        net = Network()
        with pytest.raises(PackageError):
            net.repo("x/y")

    def test_unknown_registry(self):
        net = Network()
        with pytest.raises(RegistryError):
            net.registry("nowhere.example")

    def test_blocked_prefixes(self):
        net = Network(universe=make_universe(),
                      blocked_repo_prefixes=("site/",))
        assert net.has_repo("centos7/base-x86_64")
        assert not net.has_repo("site/licensed-x86_64")
        with pytest.raises(PackageError) as exc:
            net.repo("repo://site/licensed-x86_64")
        assert "site-internal" in str(exc.value)

    def test_repo_scheme_stripping(self):
        net = Network(universe=make_universe())
        assert net.repo("repo://centos7/base-x86_64") is \
            net.repo("centos7/base-x86_64")


class TestAirGappedBuild:
    def test_build_fails_offline(self, login, alice):
        """'Security-sensitive applications ... have stringent restrictions':
        an air-gapped node cannot even pull the base image."""
        login.kernel.network.online = False
        ch = ChImage(login, alice)
        r = ch.build(tag="x", dockerfile="FROM centos:7\nRUN true\n")
        assert not r.success
        assert "cannot pull" in r.error

    def test_cached_base_allows_offline_run(self, login, alice):
        """...but an image pulled while online keeps working offline."""
        ch = ChImage(login, alice)
        path = ch.pull("centos:7")
        login.kernel.network.online = False
        from repro.core import ChRun
        res = ChRun(login, alice).run(path, ["cat", "/etc/redhat-release"])
        assert res.status == 0

    def test_offline_yum_inside_container_fails(self, login, alice):
        ch = ChImage(login, alice)
        ch.pull("centos:7")
        login.kernel.network.online = False
        r = ch.build(tag="x", force=True,
                     dockerfile="FROM centos:7\nRUN yum install -y gcc\n")
        assert not r.success
