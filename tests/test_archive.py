"""Archive pack/extract/serialize tests, including the fakeroot-aware pack
and the ownership-flattening invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.archive import ArchiveError, TarArchive, TarMember
from repro.errors import KernelError
from repro.fakeroot import FAKEROOT_CLASSIC, FakerootSyscalls
from repro.kernel import FileType, Kernel, Syscalls, make_ext4


@pytest.fixture
def kernel():
    k = Kernel(make_ext4())
    sys0 = Syscalls(k.init_process)
    sys0.mkdir_p("/src/sub")
    sys0.write_file("/src/a.txt", b"alpha")
    sys0.write_file("/src/sub/b.txt", b"beta")
    sys0.chmod("/src/a.txt", 0o4755)  # setuid, to test flattening
    sys0.chown("/src/a.txt", 10, 20)
    sys0.symlink("../a.txt", "/src/sub/link")
    sys0.mkdir_p("/dst")
    return k


@pytest.fixture
def root_sys(kernel):
    return Syscalls(kernel.init_process)


class TestPackExtract:
    def test_roundtrip(self, root_sys):
        a = TarArchive.pack(root_sys, "/src")
        a.extract(root_sys, "/dst", preserve_owner=True)
        assert root_sys.read_file("/dst/a.txt") == b"alpha"
        assert root_sys.read_file("/dst/sub/b.txt") == b"beta"
        assert root_sys.readlink("/dst/sub/link") == "../a.txt"
        st = root_sys.stat("/dst/a.txt")
        assert (st.kuid, st.kgid) == (10, 20)

    def test_extract_without_owner_uses_extractor(self, kernel, root_sys):
        a = TarArchive.pack(root_sys, "/src")
        sys0 = root_sys
        sys0.mkdir_p("/home/alice/dst")
        sys0.chown("/home/alice/dst", 1000, 1000)
        sys0.chown("/home/alice", 1000, 1000) if sys0.exists("/home/alice") \
            else None
        alice = Syscalls(kernel.login(1000, 1000))
        a.extract(alice, "/home/alice/dst", preserve_owner=False)
        st = alice.stat("/home/alice/dst/a.txt")
        assert (st.kuid, st.kgid) == (1000, 1000)

    def test_preserve_owner_fails_unprivileged(self, kernel, root_sys):
        a = TarArchive.pack(root_sys, "/src")
        root_sys.mkdir_p("/home/alice")
        root_sys.chown("/home/alice", 1000, 1000)
        alice = Syscalls(kernel.login(1000, 1000))
        alice.mkdir_p("/home/alice/dst")
        with pytest.raises(ArchiveError) as exc:
            a.extract(alice, "/home/alice/dst", preserve_owner=True)
        assert "chown" in str(exc.value)

    def test_preserve_owner_warn_mode_collects(self, kernel, root_sys):
        a = TarArchive.pack(root_sys, "/src")
        root_sys.mkdir_p("/home/alice")
        root_sys.chown("/home/alice", 1000, 1000)
        alice = Syscalls(kernel.login(1000, 1000))
        alice.mkdir_p("/home/alice/dst")
        warnings = a.extract(alice, "/home/alice/dst", preserve_owner=True,
                             on_chown_error="warn")
        assert any("a.txt" in w for w in warnings)

    def test_serialize_roundtrip(self, root_sys):
        a = TarArchive.pack(root_sys, "/src")
        b = TarArchive.deserialize(a.serialize())
        assert [m.path for m in b] == [m.path for m in a]
        assert b.member("a.txt").data == b"alpha"
        assert b.digest() == a.digest()

    def test_deserialize_garbage(self):
        with pytest.raises(ArchiveError):
            TarArchive.deserialize(b"not|an|archive\n")
        with pytest.raises(ArchiveError):
            TarArchive.deserialize(b"odd-line-count\n")

    def test_exe_metadata_survives(self, root_sys):
        from repro.shell.install import install_binary
        install_binary(root_sys, "/src/tool", "coreutils.echo",
                       arch="aarch64", static=True)
        a = TarArchive.deserialize(
            TarArchive.pack(root_sys, "/src").serialize())
        m = a.member("tool")
        assert m.exe_impl == "coreutils.echo"
        assert m.exe_arch == "aarch64"
        assert m.exe_static


class TestFlattening:
    def test_flatten_member(self):
        m = TarMember("x", FileType.REG, 0o6755, 1000, 998)
        f = m.flattened()
        assert (f.uid, f.gid) == (0, 0)
        assert f.mode == 0o755  # setuid+setgid cleared

    def test_flatten_idempotent(self):
        m = TarMember("x", FileType.REG, 0o6755, 1000, 998)
        assert m.flattened().flattened() == m.flattened()

    def test_pack_flatten(self, root_sys):
        a = TarArchive.pack(root_sys, "/src", flatten=True)
        for m in a:
            assert (m.uid, m.gid) == (0, 0)
            assert not m.mode & 0o6000


class TestFakerootAwarePack:
    def test_lies_enter_archive(self, kernel, root_sys):
        """fakeroot's purpose: archives with root ownership (§5.1), and the
        §6.2.2 ownership-preserving push falls out."""
        root_sys.mkdir_p("/home/alice/tree")
        root_sys.chown("/home/alice/tree", 1000, 1000)
        root_sys.chown("/home/alice", 1000, 1000)
        alice = Syscalls(kernel.login(1000, 1000))
        fr = FakerootSyscalls(alice, FAKEROOT_CLASSIC)
        fr.write_file("/home/alice/tree/f", b"x")
        fr.chown("/home/alice/tree/f", 47, 48)
        packed = TarArchive.pack(fr, "/home/alice/tree")
        m = packed.member("f")
        assert (m.uid, m.gid) == (47, 48)
        # raw pack sees the truth
        raw = TarArchive.pack(alice, "/home/alice/tree")
        assert (raw.member("f").uid, raw.member("f").gid) == (1000, 1000)


# -- property: serialize/deserialize roundtrip over generated members ---------------

_member = st.builds(
    TarMember,
    path=st.from_regex(r"[a-z][a-z0-9]{0,6}(/[a-z][a-z0-9]{0,6}){0,2}",
                       fullmatch=True),
    ftype=st.sampled_from([FileType.REG, FileType.SYMLINK]),
    mode=st.integers(0, 0o7777),
    uid=st.integers(0, 70000),
    gid=st.integers(0, 70000),
    data=st.binary(max_size=64),
    target=st.sampled_from(["", "a", "/abs/target"]),
)


@given(st.lists(_member, max_size=8))
def test_serialize_roundtrip_property(members):
    # symlink members keep target only; regular files keep data only
    fixed = [
        TarMember(m.path, m.ftype, m.mode, m.uid, m.gid,
                  data=m.data if m.ftype is FileType.REG else b"",
                  target=m.target if m.ftype is FileType.SYMLINK else "")
        for m in members
    ]
    a = TarArchive(fixed)
    b = TarArchive.deserialize(a.serialize())
    assert list(b) == list(a)
