"""Registry-fleet scaling: sustained pulls/sec vs shard count.

The ROADMAP's "heavy traffic" axis, measured: the same seeded open-loop
workload (Poisson arrivals, Zipf image popularity, two-tenant mix) is
played against fleets of 1/2/4/8 shards.  A single shard saturates — the
queue grows and the drain makespan stretches — so throughput there is
service capacity; consistent-hash placement plus 2-way replication with
least-queue-depth read fan-out spreads the same offered load across the
fleet, and the acceptance gate is 8 shards sustaining >= 4x the
single-shard pulls/sec with digest-identical deploys.

Emits ``BENCH_registry.json`` for the ``registry-scaling-smoke`` CI job,
which gates on pulls/sec no worse than 0.9x the committed baseline and
on seeded-replay byte-identity at 4 shards.
"""

from repro.archive import TarArchive, TarMember
from repro.cluster import RegistryFleet, make_astra, make_world
from repro.cluster.astra import astra_build_workflow
from repro.containers import ImageConfig
from repro.kernel import FileType
from repro.sim import WorkloadSpec, run_workload

from .conftest import ATSE_DOCKERFILE, report, write_bench

SHARD_LEVELS = (1, 2, 4, 8)

SPEC = WorkloadSpec(seed=17, rate=200.0, duration=5.0, zipf_s=1.1,
                    images=[f"app:v{i}" for i in range(16)],
                    tenants=[("alice", 3.0), ("bob", 1.0)])


def layer(name, data):
    return TarArchive([TarMember(name, FileType.REG, 0o644, 0, 0,
                                 data=data)])


def fresh_fleet(n_shards: int) -> RegistryFleet:
    fleet = RegistryFleet("site", n_shards=n_shards,
                          replicas=min(2, n_shards))
    for i, ref in enumerate(SPEC.refs()):
        fleet.push(ref, ImageConfig(),
                   [layer("bin", bytes([i % 251]) * 3000),
                    layer("lib", bytes([(i * 7) % 251]) * 1500)])
    return fleet


def run_level(n_shards: int):
    fleet = fresh_fleet(n_shards)
    rep = run_workload(fleet, SPEC)
    assert rep.completed == rep.offered, rep.as_dict()
    return rep, fleet


def deploy_trees(registry_shards: int):
    world = make_world()
    cluster = make_astra(world, n_compute=4)
    rep = astra_build_workflow(cluster, "alice", ATSE_DOCKERFILE, "atse",
                               n_nodes=4, registry_shards=registry_shards,
                               registry_replicas=min(2, registry_shards))
    assert rep.success, rep.phases
    return {n.hostname: sorted(n.content_store.digests())
            for n in cluster.scheduler.nodes[:4]}


def test_scaling_registry_fleet():
    """The tentpole gate: 8 shards sustain >= 4x single-shard pulls/sec
    on the seeded Zipf workload, replays are byte-identical, and deploys
    land digest-identical node stores through a fleet.  Emits the
    BENCH_registry.json artifact CI gates on."""
    throughput, p99, details = {}, {}, {}
    for n in SHARD_LEVELS:
        rep, fleet = run_level(n)
        throughput[n] = rep.pulls_per_sec
        p99[n] = rep.p99
        details[n] = rep.as_dict()
        # conservation + zero double-counting at every level
        assert rep.completed + rep.dropped + rep.failed == rep.offered
        assert sum(s.registry.stats.bytes_pulled for s in fleet.shards) \
            == fleet.stats.bytes_pulled

    # more shards never hurt, and the headline gate holds
    assert throughput[8] >= throughput[4] >= throughput[2] >= throughput[1]
    speedup = throughput[8] / throughput[1]
    assert speedup >= 4.0, f"8-shard speedup only {speedup:.2f}x"
    assert p99[8] <= p99[1]

    # seeded replay at 4 shards is byte-identical (the CI identity gate)
    replay_a, _ = run_level(4)
    replay_b, _ = run_level(4)
    assert replay_a.as_dict() == replay_b.as_dict()

    # deploys through a fleet are digest-identical to a single registry
    trees = {n: deploy_trees(n) for n in (1, 4)}
    assert trees[1] == trees[4]

    write_bench("registry", {
        "benchmark": "registry-scaling",
        "workload": {"seed": SPEC.seed, "rate": SPEC.rate,
                     "duration": SPEC.duration, "zipf_s": SPEC.zipf_s,
                     "images": len(SPEC.images),
                     "tenants": [t for t, _ in SPEC.tenants]},
        "shard_levels": list(SHARD_LEVELS),
        "pulls_per_sec": {str(n): round(throughput[n], 6)
                          for n in SHARD_LEVELS},
        "p99_seconds": {str(n): round(p99[n], 9) for n in SHARD_LEVELS},
        "speedup_8_over_1": round(speedup, 6),
        "replay_identical": True,
        "deploys_digest_identical": True,
    })

    report("Registry fleet scaling (seeded Zipf workload)", [
        *((f"pulls/sec N={n}",
           f"{throughput[n]:8.2f} (p99 {p99[n] * 1e3:8.1f} ms, "
           f"{details[n]['completed']} pulls)")
          for n in SHARD_LEVELS),
        ("8-shard speedup", f"{speedup:.2f}x (gate: >= 4x)"),
        ("replay @4 shards", "byte-identical"),
        ("deploy stores", "digest-identical, 1 vs 4 shards"),
    ])


def test_backpressure_under_overload():
    """Bounded queues shed load with retryable 503s instead of melting:
    the same hot workload against a queue-limited single shard completes
    what capacity allows, drops the rest after the retry budget, and
    counts every served byte exactly once."""
    fleet = RegistryFleet("site", n_shards=2, replicas=2, queue_limit=8)
    for i, ref in enumerate(SPEC.refs()):
        fleet.push(ref, ImageConfig(),
                   [layer("bin", bytes([i % 251]) * 3000),
                    layer("lib", bytes([(i * 7) % 251]) * 1500)])
    hot = WorkloadSpec(seed=SPEC.seed, rate=400.0, duration=2.0,
                       zipf_s=SPEC.zipf_s, images=SPEC.images,
                       tenants=SPEC.tenants)
    rep = run_workload(fleet, hot)
    assert rep.overloads > 0
    assert rep.completed + rep.dropped == rep.offered
    assert rep.completed > 0
    per_image = sum(
        fleet.blob_size(d)
        for d in fleet.image_blob_digests(hot.refs()[0]))
    assert fleet.stats.bytes_pulled == rep.completed * per_image

    report("Backpressure under 2x overload (queue_limit=8)", [
        ("offered", str(rep.offered)),
        ("completed", str(rep.completed)),
        ("dropped", str(rep.dropped)),
        ("503s seen", str(rep.overloads)),
        ("retries", str(rep.retries)),
    ])
