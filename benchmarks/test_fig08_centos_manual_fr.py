"""Figure 8: the CentOS 7 Dockerfile modified by hand to wrap the offending
yum install with fakeroot(1) builds successfully."""

from repro.core import ChImage

from .conftest import FIG8_DOCKERFILE, report


def test_fig08_centos_manual_fakeroot(benchmark, login, alice):
    ch = ChImage(login, alice)

    def build():
        if ch.storage.exists("foo"):
            ch.storage.delete("foo")
        return ch.build(tag="foo", dockerfile=FIG8_DOCKERFILE)

    result = benchmark(build)

    assert result.success, result.text
    text = result.text
    # the three manual changes from §5.2 all took effect
    assert "yum install -y epel-release" in text
    assert "yum install -y fakeroot" in text
    assert "'fakeroot yum install -y openssh'" in text
    assert text.count("Complete!") >= 3
    assert "grown in 5 instructions: foo" in text

    # ownership squashed to the invoking user (§5.2)
    st = ch.sys.stat(ch.storage.path_of("foo")
                     + "/usr/libexec/openssh/ssh-keysign")
    assert (st.kuid, st.kgid) == (1000, 1000)

    report("Figure 8: CentOS manual fakeroot build", [
        ("epel-release", "installed without fakeroot (all root:root)"),
        ("fakeroot", "installed from EPEL"),
        ("openssh", "installed under fakeroot: success"),
        ("ownership", "squashed to invoking user, as §5.2 predicts"),
        ("paper", "'grown in 5 instructions: foo' (Fig. 8 line 20)"),
    ])
