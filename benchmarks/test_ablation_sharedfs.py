"""Ablation A5 (§4.2, §6.1, §6.2.1): Type II container storage on shared
filesystems.

* fuse-overlayfs refuses default-configured NFS/Lustre (no user xattrs);
* even the vfs driver fails on NFS because the server rejects
  subordinate-UID ownership it cannot map;
* node-local /tmp works — Astra's actual deployment choice;
* xattr-enabled NFSv4.2 (the §6.2.1 recommendation) lets overlay start.
"""

import pytest

from repro.containers import DriverError, Podman
from repro.cluster import make_machine
from repro.kernel import make_lustre, make_nfs

from .conftest import FIG2_DOCKERFILE, report


def _machine_with(world, fs, mountpoint="/users"):
    m = make_machine("share", network=world.network)
    m.mount_shared(mountpoint, fs)
    sys0 = m.root_sys()
    sys0.mkdir_p(f"{mountpoint}/alice")
    sys0.chown(f"{mountpoint}/alice", 1000, 1000)
    return m


def test_ablation_overlay_on_nfs_refused(world):
    m = _machine_with(world, make_nfs("nfs-home"))
    with pytest.raises(DriverError) as exc:
        Podman(m, m.login("alice"), storage_dir="/users/alice/containers")
    assert "user xattrs" in str(exc.value)


def test_ablation_overlay_on_lustre_refused(world):
    m = _machine_with(world, make_lustre("scratch"), "/scratch")
    sys0 = m.root_sys()
    sys0.mkdir_p("/scratch/alice")
    sys0.chown("/scratch/alice", 1000, 1000)
    with pytest.raises(DriverError):
        Podman(m, m.login("alice"), storage_dir="/scratch/alice/containers")


def test_ablation_vfs_on_nfs_fails_at_chown(world):
    """§4.2: 'the filesystem server has no way to enforce the file creation
    of different UIDs on the server side'."""
    m = _machine_with(world, make_nfs("nfs-home"))
    podman = Podman(m, m.login("alice"),
                    storage_dir="/users/alice/containers", driver="vfs")
    result = podman.build(FIG2_DOCKERFILE, "foo")
    assert not result.success
    # the NFS server rejects the subordinate-UID chown, so the Type II
    # advantage evaporates and the build dies like a Type III one
    assert "cpio: chown" in result.text


def test_ablation_local_tmp_works(benchmark, world):
    """Astra's answer: node-local storage."""
    m = _machine_with(world, make_nfs("nfs-home"))
    podman = Podman(m, m.login("alice"),
                    storage_dir="/tmp/alice-containers")

    result = benchmark.pedantic(
        lambda: podman.build(FIG2_DOCKERFILE, "foo"), rounds=1, iterations=1)
    assert result.success, result.text


def test_ablation_xattr_enabled_nfs_accepts_overlay(world):
    """§6.2.1: Linux 5.9 + NFSv4.2 xattrs make overlay storage possible."""
    m = _machine_with(world, make_nfs("nfs42", xattr_support=True))
    podman = Podman(m, m.login("alice"),
                    storage_dir="/users/alice/containers")
    assert podman.build(FIG2_DOCKERFILE, "foo").success
    report("A5 shared filesystems", [
        ("overlay on default NFS", "refused (no user xattrs)"),
        ("overlay on default Lustre", "refused (no user xattrs)"),
        ("vfs on NFS", "fails: server rejects foreign UIDs"),
        ("local /tmp", "works (Astra's configuration)"),
        ("overlay on NFSv4.2+xattr", "works (§6.2.1 recommendation)"),
    ])
