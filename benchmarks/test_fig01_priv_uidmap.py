"""Figure 1: typical privileged UID map for a container run by Alice.

/etc/subuid grants alice (and bob) subordinate ranges; newuidmap installs
the kernel map 0->alice, 1..65536->200000..; the bench times the full
privileged namespace setup.
"""

from repro.cluster import make_machine
from repro.kernel import IdMapEntry, Syscalls

from .conftest import report


def _setup(login):
    shadow = login.shadow
    # the exact Figure 1 configuration
    shadow.usermod_add_subuids("alice2", 200000, 65536)
    shadow.usermod_add_subgids("alice2", 200000, 65536)
    shadow.users["alice2"] = 4001
    return shadow


def test_fig01_privileged_uid_map(benchmark, world):
    login = make_machine("login-fig1", network=world.network,
                         users={"alice2": 4001, "bob2": 4002}, subids=False)
    shadow = _setup(login)

    def setup_namespace():
        proc = login.kernel.login(4001, 4001, user="alice2")
        sys = Syscalls(proc)
        sys.unshare_user()
        shadow.newuidmap(proc, proc, [
            IdMapEntry(0, 4001, 1),
            IdMapEntry(1, 200000, 65536),
        ])
        shadow.newgidmap(proc, proc, [
            IdMapEntry(0, 4001, 1),
            IdMapEntry(1, 200000, 65536),
        ])
        return proc

    proc = benchmark(setup_namespace)
    ns = proc.cred.userns

    # /etc/subuid content (the file the sysadmin maintains)
    subuid_text = login.root_sys().read_file("/etc/subuid").decode()
    assert "alice2:200000:65536" in subuid_text

    # kernel map: uid_map file shape from the figure
    map_lines = [l.split() for l in ns.uid_map.format().splitlines()]
    assert map_lines[0] == ["0", "4001", "1"]
    assert map_lines[1] == ["1", "200000", "65536"]

    # the figure's arithmetic: container UID 65 is host UID 200064
    assert ns.uid_to_host(65) == 200064
    assert ns.uid_to_host(0) == 4001
    # one-to-one, no squashing
    assert ns.uid_from_host(200064) == 65

    report("Figure 1: privileged UID map", [
        ("/etc/subuid", subuid_text.replace("\n", "  ").strip()),
        ("uid_map", "; ".join(" ".join(l) for l in map_lines)),
        ("container 65 -> host", str(ns.uid_to_host(65))),
        ("paper", "0->alice, 1..65536->200000.. (Fig. 1)"),
    ])
