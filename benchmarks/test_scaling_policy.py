"""Supply-chain policy gate: audit throughput and rejection fidelity.

A two-image family — one clean, one installing the CVE-tripping
``openssh`` — is built, attested, signed, and pushed into a sharded
fleet; the policy gate then audits every ref registry-side.  Gates
(mirrored by the ``policy-smoke`` CI job):

* the signed clean image passes and deploys;
* the CVE image, a tampered manifest, and an unsigned push are each
  rejected with ``SupplyPolicyError`` *before* any broadcast — the
  audit itself moves zero bytes through the fleet's front door;
* attestation digests are deterministic: a fresh world re-attests the
  same Dockerfile to byte-identical blob digests.

Emits ``BENCH_policy.json``, the committed baseline the CI job
compares against.
"""

import pytest

from repro.archive import TarArchive
from repro.cluster import make_machine, make_world
from repro.cluster.fleet import RegistryFleet
from repro.containers import Manifest
from repro.core import ChImage
from repro.core.push import flatten_archive
from repro.errors import SupplyPolicyError
from repro.supply import (
    KeyRegistry,
    PolicyGate,
    SupplyPolicy,
    build_attestations,
    make_advisory_db,
)

from .conftest import FIG2_DOCKERFILE, report, write_bench

CLEAN_DOCKERFILE = """\
FROM centos:7
RUN echo hello > /hi
"""

FAMILY = {"clean": CLEAN_DOCKERFILE, "ssh": FIG2_DOCKERFILE}


def fresh_builder():
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    return ChImage(login, login.login("alice"), force_mode="seccomp")


def make_site():
    keys = KeyRegistry(seed=0)
    fleet = RegistryFleet("site", n_shards=4, replicas=2)
    gate = PolicyGate(
        SupplyPolicy(severity_threshold="high", trusted_keys=("site-ci",)),
        keys=keys, advisories=make_advisory_db(seed=0))
    fleet.signer = keys.signer("site-ci")
    return fleet, gate


def push_family(ch, fleet, *, sign=True):
    digests = {}
    for tag, dockerfile in FAMILY.items():
        assert ch.build(tag=tag, dockerfile=dockerfile,
                        force=True).success
        archive = TarArchive.pack(ch.sys, ch.storage.path_of(tag))
        bundle = build_attestations(ch, tag, dockerfile, force=True,
                                    force_mode="seccomp")
        saved, fleet.signer = fleet.signer, \
            (fleet.signer if sign else None)
        try:
            fleet.push(f"hpc/{tag}", ch.storage.config_of(tag),
                       [flatten_archive(archive)],
                       attestations=bundle.blobs())
        finally:
            fleet.signer = saved
        digests[tag] = bundle.digests()
    return digests


def test_scaling_policy_gate():
    """The policy gate acceptance matrix, emitted as BENCH_policy.json."""
    ch = fresh_builder()
    fleet, gate = make_site()
    digests = push_family(ch, fleet)

    # clean and signed: passes, and the audit itself is at-rest
    clean = gate.check(fleet, "hpc/clean")
    assert clean.ok and clean.signed and clean.findings == []

    # the CVE cell: rejected at the high threshold
    with pytest.raises(SupplyPolicyError) as cve:
        gate.check(fleet, "hpc/ssh")
    assert any("at or above high" in v for v in cve.value.violations)

    # tampered manifest: swap layers post-signing, gate catches it
    forged = Manifest(config=fleet.manifest("hpc/clean").config,
                      layers=fleet.manifest("hpc/ssh").layers)
    for shard in fleet.shards:
        shard.registry.put_manifest("hpc/clean", forged)
    with pytest.raises(SupplyPolicyError) as tam:
        gate.check(fleet, "hpc/clean")
    assert any("served manifest" in v for v in tam.value.violations)

    # every audit above was registry-side: zero front-door pull traffic
    assert fleet.stats.bytes_pulled == 0
    assert fleet.stats.blobs_pulled == 0

    # unsigned push on a fresh site: rejected outright
    ch2 = fresh_builder()
    fleet2, gate2 = make_site()
    digests2 = push_family(ch2, fleet2, sign=False)
    with pytest.raises(SupplyPolicyError) as uns:
        gate2.check(fleet2, "hpc/clean")
    assert "no signature recorded" in uns.value.violations

    # determinism: fresh worlds attest to byte-identical digests
    assert digests == digests2

    write_bench("policy", {
        "benchmark": "policy-gate",
        "family": sorted(FAMILY),
        "threshold": "high",
        "clean_packages": clean.package_count,
        "clean_findings": len(clean.findings),
        "cve_violations": list(cve.value.violations),
        "tampered_rejected": True,
        "unsigned_rejected": True,
        "audit_front_door_bytes": fleet.stats.bytes_pulled,
        "attestation_digests": digests["ssh"],
        "attestations_deterministic": True,
    })

    report("Supply-chain policy gate (2-image family)", [
        ("clean image", f"pass ({clean.package_count} packages, "
                        f"0 findings)"),
        ("CVE image", "REJECTED (openssh 7.4p1, high >= high)"),
        ("tampered manifest", "REJECTED (digest mismatch)"),
        ("unsigned push", "REJECTED (no signature recorded)"),
        ("audit traffic", f"{fleet.stats.bytes_pulled} front-door bytes"),
        ("determinism", "fresh worlds attest byte-identically"),
    ])
