"""Figure 2: the CentOS 7 Dockerfile fails in a basic Type III container
because chown(2) fails (``cpio: chown``)."""

from repro.core import ChImage

from .conftest import FIG2_DOCKERFILE, report


def test_fig02_centos_type3_build_fails(benchmark, login, alice):
    ch = ChImage(login, alice)

    def build():
        ch.storage.delete("foo") if ch.storage.exists("foo") else None
        return ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE)

    result = benchmark(build)

    assert not result.success
    text = result.text
    assert "  2 RUN ['/bin/sh', '-c', 'echo hello']" in text
    assert "hello" in text
    assert "Installing: openssh-7.4p1-21.el7.x86_64" in text
    assert "Error unpacking rpm package openssh-7.4p1-21.el7.x86_64" in text
    assert "cpio: chown" in text
    assert "error: build failed: RUN command exited with 1" in text

    report("Figure 2: CentOS 7 Type III failure", [
        ("echo step", "succeeded (needs no privilege)"),
        ("yum step", "failed: cpio: chown"),
        ("exit", "RUN command exited with 1"),
        ("paper", "identical failure, Fig. 2 lines 10-15"),
    ])
