"""Ablation A3 (§3.1, §4): client-daemon (Docker) vs fork-exec (Podman,
Charliecloud).

The daemon costs a root service with startup overhead and breaks process
ancestry (containers descend from dockerd, not from the user's shell — the
property resource managers depend on for tracking).
"""

from repro.containers import DAEMON_STARTUP_TICKS, DockerDaemon, Podman
from repro.core import ChImage, ChRun

from .conftest import report

SIMPLE = "FROM centos:7\nRUN true\n"


def test_ablation_daemon_startup_cost(benchmark, world):
    from repro.cluster import make_machine

    def start_daemon():
        m = make_machine("dkr", network=world.network)
        before = m.kernel.ticks
        DockerDaemon(m, docker_group={1000})
        return m.kernel.ticks - before

    ticks = benchmark(start_daemon)
    assert ticks >= DAEMON_STARTUP_TICKS
    report("A3 daemon startup", [
        ("dockerd startup", f"{ticks} simulated ticks"),
        ("fork-exec start", "~2 ticks (one fork, one exec)"),
    ])


def test_ablation_forkexec_run_cost(benchmark, login, alice):
    ch = ChImage(login, alice)
    tree = ch.pull("centos:7")
    run = ChRun(login, alice)
    res = benchmark(lambda: run.run(tree, ["true"]))
    assert res.status == 0


def test_ablation_process_ancestry(login, alice):
    """Containers: children of the shell (podman/ch-run) vs children of
    dockerd (docker)."""
    docker = DockerDaemon(login, docker_group={1000})
    docker.build(alice, SIMPLE, "base")
    assert docker.container_parent_pid(None) == docker.daemon_proc.pid
    assert docker.daemon_proc.ppid == login.kernel.init_process.pid

    podman = Podman(login, alice)
    podman.build(SIMPLE, "base")
    out = podman.run("base", ["true"])
    assert out.status == 0
    # the fork-exec path created no long-lived root service
    services = [p for p in login.kernel.processes.values()
                if p.comm == "dockerd"]
    assert len(services) == 1  # only the Docker daemon we started ourselves

    report("A3 process model", [
        ("docker", "containers descend from root dockerd (tracking broken)"),
        ("podman/ch-run", "containers descend from the user's shell"),
        ("paper", "§3.1: daemon 'breaks process tracking by resource "
                  "managers'"),
    ])
