"""Figure 6: the Astra container build workflow — podman build on the login
node, push to the GitLab registry, parallel deploy with an HPC runtime."""

import itertools

from repro.cluster import astra_build_workflow, laptop_build_workflow, make_astra

from .conftest import ATSE_DOCKERFILE, report


def test_fig06_astra_workflow(benchmark, world_multiarch):
    astra = make_astra(world_multiarch, n_compute=4)
    tags = (f"atse-{i}" for i in itertools.count())

    def workflow():
        return astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                                    next(tags), n_nodes=4)

    rep = benchmark(workflow)
    assert rep.success
    assert rep.layer_count == 4
    for rank in range(4):
        assert f"[rank {rank}]" in rep.deploy.output
        assert "(aarch64)" in rep.deploy.output

    report("Figure 6: Astra workflow", [
        ("build", "rootless podman on astra-login1 (aarch64): ok"),
        ("push", f"{rep.pushed_ref} ({rep.layer_count} layers)"),
        ("deploy", f"{len(rep.deploy.nodes)} nodes via scheduler + "
                   "Charliecloud: ok"),
        ("paper", "podman build -> GitLab registry -> parallel launch"),
    ])


def test_fig06_contrast_laptop_build_fails(world_multiarch):
    """The motivating failure: the same workflow from an x86-64 laptop."""
    astra = make_astra(world_multiarch, n_compute=2)
    rep = laptop_build_workflow(astra, world_multiarch, "alice",
                                ATSE_DOCKERFILE, "atse-x86", n_nodes=2)
    assert rep.build_ok and rep.push_ok
    assert not rep.deploy.success
    assert "Exec format error" in rep.deploy.output
