"""Deployment scaling: the Figure 6 workflow's deploy phase across an
increasing node count (the §6.3 'parallel across node types' impact story).

Shape to reproduce: per-node work is constant (one registry pull + one
fork-exec container start each), so total transfer scales linearly and
nothing serializes through a daemon.
"""

import itertools

import pytest

from repro.cluster import astra_build_workflow, make_astra, make_world

from .conftest import ATSE_DOCKERFILE, report

_tags = (f"atse-{i}" for i in itertools.count())


@pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
def test_scaling_deploy(benchmark, n_nodes):
    world = make_world()
    astra = make_astra(world, n_compute=n_nodes)
    registry = world.site_registry

    def run():
        return astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                                    next(_tags), n_nodes=n_nodes)

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rep.success
    assert len(rep.deploy.nodes) == n_nodes
    # each node pulled the image exactly once
    assert registry.stats.blobs_pulled >= n_nodes


def test_scaling_transfer_linear():
    """Bytes pulled grow linearly in node count; per-node cost constant."""
    per_node = {}
    for n in (1, 4):
        world = make_world()
        astra = make_astra(world, n_compute=n)
        rep = astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                                   "atse", n_nodes=n)
        assert rep.success
        per_node[n] = world.site_registry.stats.bytes_pulled / n
    ratio = per_node[4] / per_node[1]
    assert 0.8 < ratio < 1.2  # constant per-node transfer
    report("Deploy scaling", [
        ("per-node bytes (1 node)", f"{per_node[1]:.0f}"),
        ("per-node bytes (4 nodes)", f"{per_node[4]:.0f}"),
        ("shape", "linear total, constant per node, no daemon bottleneck"),
    ])
