"""Deployment scaling: the Figure 6 workflow's deploy phase across an
increasing node count (the §6.3 'parallel across node types' impact story),
as an ablation of the two distribution strategies.

* ``registry`` — every node pulls from the site registry: total transfer
  is O(N·image) through one uplink, makespan O(N).  This is the baseline
  fan-out a naive `srun ch-image pull` produces, and the linear shape the
  original figure reproduced.
* ``tree`` — binomial-tree broadcast: the registry is hit once per blob,
  peers re-serve chunks, egress O(image), makespan O(log N).

Either way no daemon serializes anything (§3.1): the transfers are
initiated by the user's own ranks, and the deployed trees are
byte-identical.
"""

import itertools

import pytest

from repro.cas import snapshot_digest, snapshot_tree
from repro.cluster import astra_build_workflow, make_astra, make_world
from repro.containers import ImageRef

from .conftest import ATSE_DOCKERFILE, report

_tags = (f"atse-{i}" for i in itertools.count())

NODE_COUNTS = (1, 2, 4, 8)


def _deploy(n_nodes, strategy, tag=None):
    world = make_world()
    astra = make_astra(world, n_compute=n_nodes)
    rep = astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                               tag or next(_tags), n_nodes=n_nodes,
                               deploy_strategy=strategy)
    return world, astra, rep


def _node_tree_digest(node, registry_ref):
    """Digest of one node's deployed (flattened) image tree."""
    flat = ImageRef.parse(registry_ref).flat_name
    path = f"/var/tmp/alice.ch/img/{flat}"
    return snapshot_digest(snapshot_tree(node.root_sys(), path))


@pytest.mark.parametrize("strategy", ["registry", "tree"])
@pytest.mark.parametrize("n_nodes", list(NODE_COUNTS))
def test_scaling_deploy(benchmark, n_nodes, strategy):
    world = make_world()
    astra = make_astra(world, n_compute=n_nodes)
    registry = world.site_registry

    def run():
        return astra_build_workflow(astra, "alice", ATSE_DOCKERFILE,
                                    next(_tags), n_nodes=n_nodes,
                                    deploy_strategy=strategy)

    rep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rep.success
    assert len(rep.deploy.nodes) == n_nodes
    dist = rep.distribution
    assert dist is not None and dist.strategy == strategy
    if strategy == "registry":
        # the baseline pull storm: each node pulled every blob itself
        assert registry.stats.blobs_pulled >= n_nodes
        assert dist.registry_blobs_pulled == n_nodes * dist.blobs
        assert dist.peer_sends == 0
    else:
        # tree mode hits the registry exactly once per blob, whatever N is
        assert dist.registry_blobs_pulled == dist.blobs
        assert registry.stats.blobs_pulled == dist.blobs
        if n_nodes > 1:
            assert dist.peer_sends == (n_nodes - 1) * dist.blobs
    # the node-side pulls were all served from the pre-seeded local CAS
    assert registry.stats.blobs_pull_skipped >= n_nodes * dist.blobs


def test_ablation_registry_vs_tree():
    """Makespan-vs-nodes curves for both strategies, one shared tag so the
    deployed trees are digest-comparable across runs."""
    makespan = {s: {} for s in ("registry", "tree")}
    egress = {s: {} for s in ("registry", "tree")}
    tree_digests = {}
    for strategy in ("registry", "tree"):
        for n in NODE_COUNTS:
            _, astra, rep = _deploy(n, strategy, tag="atse")
            assert rep.success
            makespan[strategy][n] = rep.deploy_makespan
            egress[strategy][n] = rep.distribution.registry_egress_bytes
            if n == max(NODE_COUNTS):
                tree_digests[strategy] = [
                    _node_tree_digest(node, rep.pushed_ref)
                    for node in astra.compute]

    # every node got the byte-identical image, whichever path the bytes took
    assert len(set(tree_digests["registry"] + tree_digests["tree"])) == 1
    # at one node the strategies coincide (one registry pull either way)
    assert egress["tree"][1] == egress["registry"][1]
    assert makespan["tree"][1] <= makespan["registry"][1] + 1e-9
    # the asymptotic win at 8 nodes: >=4x less egress, >=2x less makespan,
    # and the CI smoke gate — tree strictly below registry-direct
    n_max = max(NODE_COUNTS)
    assert makespan["tree"][n_max] < makespan["registry"][n_max]
    assert egress["registry"][n_max] >= 4 * egress["tree"][n_max]
    assert makespan["registry"][n_max] >= 2 * makespan["tree"][n_max]

    report("Deploy scaling ablation (registry-direct vs tree broadcast)", [
        *((f"makespan n={n}",
           f"registry {makespan['registry'][n] * 1e3:8.1f} ms | "
           f"tree {makespan['tree'][n] * 1e3:8.1f} ms")
          for n in NODE_COUNTS),
        (f"registry egress n={n_max}",
         f"registry {egress['registry'][n_max]} B | "
         f"tree {egress['tree'][n_max]} B "
         f"({egress['registry'][n_max] / egress['tree'][n_max]:.1f}x less)"),
        ("shape", "egress O(N·image) vs O(image); "
                  "makespan O(N) vs O(log N); no daemon either way"),
    ])


def test_scaling_transfer_linear():
    """Registry-direct baseline: bytes pulled grow linearly in node count,
    per-node cost constant (the original pre-ablation shape)."""
    per_node = {}
    for n in (1, 4):
        world, _, rep = _deploy(n, "registry", tag="atse")
        assert rep.success
        per_node[n] = world.site_registry.stats.bytes_pulled / n
    ratio = per_node[4] / per_node[1]
    assert 0.8 < ratio < 1.2  # constant per-node transfer
    report("Deploy scaling (registry-direct baseline)", [
        ("per-node bytes (1 node)", f"{per_node[1]:.0f}"),
        ("per-node bytes (4 nodes)", f"{per_node[4]:.0f}"),
        ("shape", "linear total, constant per node, no daemon bottleneck"),
    ])


def test_scaling_tree_egress_constant():
    """Tree broadcast: registry egress is O(image), independent of N."""
    egress = {}
    for n in (1, 8):
        _, _, rep = _deploy(n, "tree", tag="atse")
        assert rep.success
        egress[n] = rep.distribution.registry_egress_bytes
    assert egress[8] == egress[1]
