"""Ablation A6 (§5.1, §6.2.2): fakeroot implementation coverage.

"They do have different quirks; for example, LD_PRELOAD implementations are
architecture-independent but cannot wrap statically linked executables,
while ptrace(2) are the reverse.  We've encountered packages that fakeroot
cannot install but fakeroot-ng and pseudo can."

Matrix: engine x package, where the packages exercise different privileged
operations (plain chown; file capabilities; a statically linked helper).
"""

import pytest

from repro.containers import enter_container
from repro.core import ChImage
from repro.shell import OutputSink, execute

from .conftest import report

#: package -> privileged operation it needs
PACKAGES = {
    "openssh": "chown to package group",
    "iputils": "file capabilities (xattr)",
    "sash": "chown from a statically linked helper",
}

#: expected install outcome per engine (x86_64)
EXPECTED = {
    "fakeroot": {"openssh": True, "iputils": False, "sash": False},
    "fakeroot-ng": {"openssh": True, "iputils": True, "sash": True},
    "pseudo": {"openssh": True, "iputils": True, "sash": False},
}

ENGINE_PACKAGE = {"fakeroot": "fakeroot", "fakeroot-ng": "fakeroot-ng",
                  "pseudo": "pseudo"}  # pseudo is in EPEL here too? no:
# fakeroot + fakeroot-ng ship in EPEL; pseudo is exercised via the Debian
# wrapper name — for the CentOS matrix we install fakeroot-ng's engine by
# invoking its own binary name.


def _container(login, user, ch):
    tree = ch.pull("centos:7")
    ctx = enter_container(user, tree, "type3", dev_fs=login.dev_fs)
    return ctx


def _sh(ctx, cmd):
    sink = OutputSink()
    status = execute(ctx.child(stdout=sink, stderr=sink),
                     ["/bin/sh", "-c", cmd])
    return status, sink.text()


@pytest.mark.parametrize("engine", ["fakeroot", "fakeroot-ng"])
def test_ablation_engine_package_matrix(benchmark, world, engine):
    from repro.cluster import make_machine
    login = make_machine(f"m-{engine}", network=world.network)
    alice = login.login("alice")
    ch = ChImage(login, alice)
    ctx = _container(login, alice, ch)
    # bootstrap: EPEL + the engine's package, unwrapped (all root:root)
    status, out = _sh(ctx, "yum install -y epel-release && "
                           "yum-config-manager --disable epel && "
                           f"yum --enablerepo=epel install -y "
                           f"{ENGINE_PACKAGE[engine]}")
    assert status == 0, out
    wrapper = "fakeroot" if engine == "fakeroot" else "fakeroot-ng"

    results = {}
    for pkg in PACKAGES:
        st, out = _sh(ctx, f"{wrapper} yum install -y {pkg}")
        results[pkg] = st == 0

    assert results == EXPECTED[engine], results
    report(f"A6 coverage: {engine}", [
        (pkg, f"{'ok' if ok else 'FAILED'}  ({PACKAGES[pkg]})")
        for pkg, ok in results.items()
    ])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_pseudo_coverage_on_debian(world):
    """pseudo (xattr interception, no static wrap) via the Debian path."""
    from repro.cluster import make_machine
    login = make_machine("m-pseudo", network=world.network)
    alice = login.login("alice")
    ch = ChImage(login, alice)
    tree = ch.pull("debian:buster")
    ctx = enter_container(alice, tree, "type3", dev_fs=login.dev_fs)
    _sh(ctx, "echo 'APT::Sandbox::User \"root\";' > "
             "/etc/apt/apt.conf.d/no-sandbox")
    st, out = _sh(ctx, "apt-get update && apt-get install -y pseudo")
    assert st == 0, out
    # openssh-client needs chown AND setcap: pseudo fakes both
    st, out = _sh(ctx, "fakeroot apt-get install -y openssh-client")
    assert st == 0, out


def test_ablation_ptrace_arch_restriction(world):
    """fakeroot-ng does not run on aarch64 — on Astra only the LD_PRELOAD
    engines are available (Table 1 architectures column)."""
    from repro.cluster import make_machine
    from repro.fakeroot import FAKEROOT_NG, FakerootError, FakerootSyscalls
    from repro.kernel import Syscalls
    m = make_machine("arm", arch="aarch64", network=world.network)
    with pytest.raises(FakerootError) as exc:
        FakerootSyscalls(Syscalls(m.login("alice")), FAKEROOT_NG)
    assert "aarch64" in str(exc.value)
