"""Figure 7: the fakeroot(1) demo — chown + mknod 'succeed' inside the
wrapper; unwrapped ls exposes the lies."""

import itertools

from repro.cluster import make_machine
from repro.distro import populate_userland
from repro.kernel import Syscalls
from repro.shell import ExecContext, OutputSink, run_shell
from repro.shell.install import install_binary, install_script

from .conftest import report

FAKEROOT_SH = """\
set -x
touch test.file
chown nobody test.file
mknod test.dev c 1 1
ls -lh test.dev test.file
"""


def test_fig07_fakeroot_demo(benchmark, world):
    ws = make_machine("workstation", network=world.network)
    root = ws.root_sys()
    populate_userland(root, "x86_64")
    install_binary(root, "/usr/bin/fakeroot", "fakeroot.classic")
    install_script(root, "/home/alice/fakeroot.sh", FAKEROOT_SH)
    alice = ws.login("alice")
    counter = itertools.count()

    def run_demo():
        n = next(counter)
        ctx = ExecContext(alice, Syscalls(alice),
                          env={"PATH": "/usr/bin:/bin"})
        ctx.sys.mkdir_p(f"/home/alice/d{n}")
        ctx.sys.chdir(f"/home/alice/d{n}")
        wrapped = ctx.child(stdout=OutputSink(), stderr=OutputSink())
        run_shell(wrapped, "fakeroot /home/alice/fakeroot.sh")
        naked = ctx.child(stdout=OutputSink(), stderr=OutputSink())
        run_shell(naked, "ls -lh test.dev test.file")
        return wrapped.stdout.text(), naked.stdout.text()

    inside, outside = benchmark(run_demo)

    # Inside the wrapper: a device node owned root:root, a nobody file.
    assert "crw-r--r-- 1 root root   1, 1" in inside
    assert "nobody root" in inside
    # Outside: plain files owned by alice.
    assert "alice alice" in outside
    assert "crw" not in outside

    report("Figure 7: fakeroot demo", [
        ("inside ls", inside.splitlines()[0]),
        ("", inside.splitlines()[1]),
        ("outside ls", outside.splitlines()[0]),
        ("", outside.splitlines()[1]),
        ("paper", "wrapped ls shows the lies; unwrapped ls exposes them"),
    ])
