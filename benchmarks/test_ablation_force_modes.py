"""Ablation A9 (§6.2.2(3)): --force=fakeroot (wrapper installed into the
image) vs --force=seccomp (wrapper in the container implementation).

The seccomp mode removes every §6.1 Type III complication the paper lists
except single-layer push: no fakeroot in the image, no per-RUN injection
heuristics, full syscall coverage (xattrs, static binaries, set*id), and a
host-side lie database enabling ownership-preserving push.
"""

import itertools

from repro.cluster import make_machine
from repro.core import ChImage

from .conftest import FIG2_DOCKERFILE, FIG3_DOCKERFILE, report

_tags = (f"t{i}" for i in itertools.count())


def test_ablation_seccomp_build(benchmark, world):
    login = make_machine("sc", network=world.network)
    ch = ChImage(login, login.login("alice"), force_mode="seccomp")
    result = benchmark(lambda: ch.build(tag=next(_tags),
                                        dockerfile=FIG2_DOCKERFILE,
                                        force=True))
    assert result.success


def test_ablation_force_mode_comparison(world):
    login = make_machine("cmp9", network=world.network)
    alice = login.login("alice")

    fr = ChImage(login, alice)
    r_fr = fr.build(tag="fr", dockerfile=FIG2_DOCKERFILE, force=True)
    sc = ChImage(login, alice, force_mode="seccomp")
    r_sc = sc.build(tag="sc", dockerfile=FIG2_DOCKERFILE, force=True)
    assert r_fr.success and r_sc.success

    fr_path = fr.storage.path_of("fr")
    sc_path = sc.storage.path_of("sc")
    fr_pollution = fr.sys.exists(f"{fr_path}/usr/bin/fakeroot")
    sc_pollution = sc.sys.exists(f"{sc_path}/usr/bin/fakeroot")
    assert fr_pollution and not sc_pollution

    # package coverage: the A6 gaps close under seccomp
    hard = "FROM centos:7\nRUN yum install -y iputils sash\n"
    r_hard_fr = ChImage(login, alice).build(tag="hfr", dockerfile=hard,
                                            force=True)
    r_hard_sc = ChImage(login, alice, force_mode="seccomp").build(
        tag="hsc", dockerfile=hard, force=True)
    assert not r_hard_fr.success  # classic fakeroot: no xattr/static cover
    assert r_hard_sc.success

    # Debian without touching apt config
    r_deb = ChImage(login, alice, force_mode="seccomp").build(
        tag="deb", dockerfile=FIG3_DOCKERFILE, force=True)
    assert r_deb.success

    report("A9 force modes", [
        ("fakeroot mode", "works for Fig 2/3; installs fakeroot + EPEL "
                          "into the image; misses xattr/static packages"),
        ("seccomp mode", "works for Fig 2/3 + iputils + sash; zero image "
                         "modification; no apt sandbox config"),
        ("paper", "§6.2.2(3): 'move fakeroot(1) ... into the container "
                  "implementation. This would simplify it'"),
    ])
