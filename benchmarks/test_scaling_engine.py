"""Fleet-scale engine throughput: the opt-on/opt-off ablation.

The simulation engine got three perf layers — closed-form bulk
transfers, leaf-event coalescing, and a bucketed event queue — all
contractually **bit-identical** to the reference implementations they
replace (``docs/PERFORMANCE.md``).  This benchmark is the proof at
fleet scale: a 10k-node registry pull storm, a 10k-node pipelined tree
broadcast, and a seeded Zipf pull workload, each run with optimizations
on and again in reference mode, asserting float-identical reports and
digest-identical node stores while timing both.

The headline gate is the §4.2 pull storm — 10 000 same-timestamp pull
events, 1024 chunks per hop — where the closed-form transfer path must
sustain **>= 10x the reference engine's events/sec**.  The tree leg is
deliberately *not* gated on throughput: pipelined relays have genuinely
per-chunk availability, so they stay on the reference-style chunk loop
by design; it gates on identity and on coalescing shrinking the event
count instead.

Emits ``BENCH_engine.json`` for the ``engine-throughput-smoke`` CI job,
which gates on events/sec no worse than 0.9x the committed baseline.
"""

import hashlib
import time

from repro.archive import TarArchive, TarMember
from repro.cas.store import ContentStore
from repro.cluster import RegistryFleet
from repro.cluster.broadcast import distribute_blobs, make_deploy_topology
from repro.containers import ImageConfig
from repro.kernel import FileType
from repro.sim import (
    EngineProfile,
    SimEngine,
    WorkloadSpec,
    reference_engine,
    run_workload,
)

from .conftest import report, write_bench

N_NODES = 10_000
BLOB = bytes(range(256)) * 64            # 16 KiB, deterministic
STORM_CHUNK = 16                          # -> 1024 chunks per hop
TREE_CHUNK = 64                           # -> 256 chunks per hop

SPEC = WorkloadSpec(seed=23, rate=200.0, duration=5.0, zipf_s=1.1,
                    images=[f"app:v{i}" for i in range(8)],
                    tenants=[("alice", 3.0), ("bob", 1.0)])


class _SimNode:
    """The minimum a broadcast target needs: a name, a store, a link."""

    __slots__ = ("hostname", "content_store", "netlink")

    def __init__(self, hostname: str):
        self.hostname = hostname
        self.content_store = ContentStore()
        self.netlink = None


class _SimRegistry:
    """A registry stub serving one blob — no push/auth machinery, so
    the benchmark times the engine, not the registry."""

    def __init__(self, blob: bytes):
        self.name = "registry.sim"
        self.fault_injector = None
        self.netlink = None
        self._blob = blob

    def blob_size(self, digest: str) -> int:
        return len(self._blob)

    def fetch_blob(self, digest: str) -> bytes:
        return self._blob


def _broadcast(strategy: str, chunk_size: int, reference: bool):
    """One 10k-node distribution; returns (wall, events, report,
    profile, store digests)."""
    nodes = [_SimNode(f"n{i:05d}") for i in range(N_NODES)]
    registry = _SimRegistry(BLOB)
    topo = make_deploy_topology(registry, nodes, chunk_size=chunk_size)
    digest = hashlib.sha256(BLOB).hexdigest()
    profile = EngineProfile()

    def go():
        engine = SimEngine(profile=profile)
        t0 = time.perf_counter()
        rep = distribute_blobs(registry, [digest], nodes, topo,
                               engine=engine, strategy=strategy)
        return time.perf_counter() - t0, engine.events_processed, rep

    if reference:
        with reference_engine():
            wall, events, rep = go()
    else:
        wall, events, rep = go()
    stores = {n.hostname: sorted(n.content_store.digests())
              for n in nodes}
    return wall, events, rep, profile, stores


def _workload(reference: bool):
    fleet = RegistryFleet("site", n_shards=4, replicas=2)
    for i, ref in enumerate(SPEC.refs()):
        fleet.push(ref, ImageConfig(),
                   [TarArchive([TarMember("bin", FileType.REG, 0o644,
                                          0, 0,
                                          data=bytes([i % 251]) * 3000)])])

    def go():
        engine = SimEngine()
        t0 = time.perf_counter()
        rep = run_workload(fleet, SPEC, engine=engine)
        return time.perf_counter() - t0, engine.events_processed, rep

    if reference:
        with reference_engine():
            return go()
    return go()


def test_engine_throughput_ablation():
    """The tentpole gate: the optimized engine sustains >= 10x the
    reference engine's events/sec on the 10k-node pull storm, with
    float-identical timings and digest-identical stores on every leg.
    Emits the BENCH_engine.json artifact CI gates on."""
    # --- leg 1: the pull storm (headline events/sec gate) -------------
    sw_o, se_o, sr_o, sp_o, ss_o = _broadcast("registry", STORM_CHUNK,
                                              reference=False)
    sw_r, se_r, sr_r, _, ss_r = _broadcast("registry", STORM_CHUNK,
                                           reference=True)
    assert se_o == se_r, "coalescing must not change the storm's events"
    assert sr_o.node_ready == sr_r.node_ready      # exact float identity
    assert sr_o.as_dict() == sr_r.as_dict()
    assert ss_o == ss_r and len(ss_o) == N_NODES
    storm_evs_opt = se_o / sw_o
    storm_evs_ref = se_r / sw_r
    speedup = storm_evs_opt / storm_evs_ref
    assert speedup >= 10.0, \
        f"pull storm only {speedup:.1f}x the reference engine"
    # the storm is one 10k-event same-timestamp bucket plus the start
    assert sp_o.events["_BlobCast.pull"] == N_NODES

    # --- leg 2: the pipelined tree (identity + coalescing gate) -------
    tw_o, te_o, tr_o, tp_o, ts_o = _broadcast("tree", TREE_CHUNK,
                                              reference=False)
    tw_r, te_r, tr_r, _, ts_r = _broadcast("tree", TREE_CHUNK,
                                           reference=True)
    assert tr_o.node_ready == tr_r.node_ready      # exact float identity
    assert tr_o.as_dict() == tr_r.as_dict()
    assert ts_o == ts_r and len(ts_o) == N_NODES
    # leaf coalescing: unobserved arrivals collapse into node_ready, so
    # the optimized run schedules strictly fewer events
    assert te_o < te_r
    assert tw_o <= tw_r * 1.25, \
        f"tree leg regressed: {tw_o:.2f}s vs reference {tw_r:.2f}s"

    # --- leg 3: the seeded Zipf workload (behavioural identity) -------
    ww_o, we_o, wr_o = _workload(reference=False)
    ww_r, we_r, wr_r = _workload(reference=True)
    assert wr_o.as_dict() == wr_r.as_dict()
    assert we_o == we_r
    assert wr_o.completed == wr_o.offered

    write_bench("engine", {
        "benchmark": "engine-throughput",
        "nodes": N_NODES,
        "blob_bytes": len(BLOB),
        "pull_storm": {
            "chunk_size": STORM_CHUNK,
            "events": se_o,
            "events_per_sec": round(storm_evs_opt, 3),
            "events_per_sec_reference": round(storm_evs_ref, 3),
            "speedup": round(speedup, 3),
            "wall_seconds": round(sw_o, 6),
            "wall_seconds_reference": round(sw_r, 6),
            "makespan": round(sr_o.makespan, 9),
        },
        "tree": {
            "chunk_size": TREE_CHUNK,
            "events": te_o,
            "events_reference": te_r,
            "events_per_sec": round(te_o / tw_o, 3),
            "wall_seconds": round(tw_o, 6),
            "wall_seconds_reference": round(tw_r, 6),
            "makespan": round(tr_o.makespan, 9),
            "profile_top": tp_o.top(3),
        },
        "workload": {
            "events": we_o,
            "events_per_sec": round(we_o / ww_o, 3),
            "wall_seconds": round(ww_o, 6),
            "wall_seconds_reference": round(ww_r, 6),
            "completed": wr_o.completed,
        },
        "identical_reports": True,
        "identical_stores": True,
    })

    report("Engine throughput ablation (10k nodes, opt vs reference)", [
        ("pull storm ev/s", f"{storm_evs_opt:12,.0f} vs "
                            f"{storm_evs_ref:10,.0f} reference "
                            f"({speedup:.1f}x, gate: >= 10x)"),
        ("pull storm wall", f"{sw_o:8.2f}s vs {sw_r:8.2f}s reference"),
        ("tree events", f"{te_o:8d} vs {te_r:8d} reference "
                        f"(coalesced {te_r - te_o})"),
        ("tree wall", f"{tw_o:8.2f}s vs {tw_r:8.2f}s reference"),
        ("workload events", f"{we_o:8d} (report byte-identical)"),
        ("timings", "float-identical on every leg"),
        ("node stores", f"digest-identical x{N_NODES}"),
    ])
