"""Figure 10: ch-image --force builds the *unmodified* CentOS 7 Dockerfile
by detecting rhel7 and auto-injecting fakeroot."""

from repro.core import ChImage

from .conftest import FIG2_DOCKERFILE, report


def test_fig10_force_centos(benchmark, login, alice):
    ch = ChImage(login, alice)

    def build():
        if ch.storage.exists("foo"):
            ch.storage.delete("foo")
        return ch.build(tag="foo", dockerfile=FIG2_DOCKERFILE, force=True)

    result = benchmark(build)

    assert result.success, result.text
    text = result.text
    assert "will use --force: rhel7: CentOS/RHEL 7" in text
    assert ("workarounds: init step 1: checking: $ command -v fakeroot > "
            "/dev/null") in text
    assert "+ grep -Eq" in text  # the set -ex echo of the init pipeline
    assert "+ yum install -y epel-release" in text
    assert "+ yum-config-manager --disable epel" in text
    assert "+ yum --enablerepo=epel install -y fakeroot" in text
    assert ("workarounds: RUN: new command: ['fakeroot', '/bin/sh', '-c', "
            "'yum install -y openssh']") in text
    assert "--force: init OK & modified 1 RUN instructions" in text
    assert "grown in 3 instructions: foo" in text
    assert result.modified_runs == 1

    report("Figure 10: ch-image --force (CentOS)", [
        ("detection", "rhel7 via /etc/redhat-release regex, host-side"),
        ("init", "EPEL installed but disabled; fakeroot from EPEL"),
        ("modified RUNs", str(result.modified_runs)),
        ("paper", "'--force: init OK & modified 1 RUN instructions'"),
    ])
