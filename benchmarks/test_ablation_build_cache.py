"""Ablation A2 (§6.1): "Charliecloud lacks a per-instruction build cache, in
contrast to other leading Dockerfile interpreters including Podman and
Docker.  This caching can greatly accelerate repetitive builds."

Measure: rebuild the same Dockerfile — Podman with cache vs without, and
ch-image (which always re-executes).
"""

import itertools
import time

from repro.containers import Podman
from repro.core import ChImage

from .conftest import ATSE_DOCKERFILE, report

_tags = (f"t{i}" for i in itertools.count())


def test_ablation_podman_cached_rebuild(benchmark, login, alice):
    podman = Podman(login, alice)
    first = podman.build(ATSE_DOCKERFILE, next(_tags))
    assert first.success

    def rebuild():
        return podman.build(ATSE_DOCKERFILE, next(_tags))

    result = benchmark(rebuild)
    assert result.success
    assert result.cache_hits == 3  # every RUN served from cache
    assert result.instructions_run == 0


def test_ablation_chimage_always_reexecutes(benchmark, login, alice):
    ch = ChImage(login, alice)
    first = ch.build(tag="warm", dockerfile=ATSE_DOCKERFILE, force=True)
    assert first.success

    def rebuild():
        return ch.build(tag=next(_tags), dockerfile=ATSE_DOCKERFILE,
                        force=True)

    result = benchmark(rebuild)
    assert result.success  # correct, just not cached


def test_ablation_cache_speedup_shape(login):
    """Cached rebuild must be decisively faster than uncached."""
    cached = Podman(login, login.login("alice"))
    uncached = Podman(login, login.login("bob"), layers_cache=False)
    for p in (cached, uncached):
        assert p.build(ATSE_DOCKERFILE, next(_tags)).success  # warm

    def timed(p):
        t0 = time.perf_counter()
        res = p.build(ATSE_DOCKERFILE, next(_tags))
        assert res.success
        return time.perf_counter() - t0

    t_cached = min(timed(cached) for _ in range(3))
    t_uncached = min(timed(uncached) for _ in range(3))
    assert t_cached < t_uncached
    report("A2 build cache", [
        ("cached rebuild", f"{t_cached * 1000:.1f} ms"),
        ("uncached rebuild", f"{t_uncached * 1000:.1f} ms"),
        ("speedup", f"{t_uncached / t_cached:.1f}x"),
        ("paper", "'caching can greatly accelerate repetitive builds'"),
    ])
