"""Ablation A2 (§6.1): "Charliecloud lacks a per-instruction build cache, in
contrast to other leading Dockerfile interpreters including Podman and
Docker.  This caching can greatly accelerate repetitive builds."

Measure: rebuild the same Dockerfile — Podman with cache vs without,
ch-image without a cache (always re-executes), and ch-image with the CAS
build cache: cold vs warm on one builder, and warm on a *different* node
seeded from a registry cache export.
"""

import itertools
import time

from repro.cluster import make_machine, make_world
from repro.containers import Podman
from repro.core import ChImage
from repro.obs import attach_tracer

from .conftest import ATSE_DOCKERFILE, report

_tags = (f"t{i}" for i in itertools.count())


def test_ablation_podman_cached_rebuild(benchmark, login, alice):
    podman = Podman(login, alice)
    first = podman.build(ATSE_DOCKERFILE, next(_tags))
    assert first.success

    def rebuild():
        return podman.build(ATSE_DOCKERFILE, next(_tags))

    result = benchmark(rebuild)
    assert result.success
    assert result.cache_hits == 3  # every RUN served from cache
    assert result.instructions_run == 0


def test_ablation_chimage_always_reexecutes(benchmark, login, alice):
    ch = ChImage(login, alice)
    first = ch.build(tag="warm", dockerfile=ATSE_DOCKERFILE, force=True)
    assert first.success

    def rebuild():
        return ch.build(tag=next(_tags), dockerfile=ATSE_DOCKERFILE,
                        force=True)

    result = benchmark(rebuild)
    assert result.success  # correct, just not cached


def test_ablation_cache_speedup_shape(login):
    """Cached rebuild must be decisively faster than uncached."""
    cached = Podman(login, login.login("alice"))
    uncached = Podman(login, login.login("bob"), layers_cache=False)
    for p in (cached, uncached):
        assert p.build(ATSE_DOCKERFILE, next(_tags)).success  # warm

    def timed(p):
        t0 = time.perf_counter()
        res = p.build(ATSE_DOCKERFILE, next(_tags))
        assert res.success
        return time.perf_counter() - t0

    t_cached = min(timed(cached) for _ in range(3))
    t_uncached = min(timed(uncached) for _ in range(3))
    assert t_cached < t_uncached
    report("A2 build cache", [
        ("cached rebuild", f"{t_cached * 1000:.1f} ms"),
        ("uncached rebuild", f"{t_uncached * 1000:.1f} ms"),
        ("speedup", f"{t_uncached / t_cached:.1f}x"),
        ("paper", "'caching can greatly accelerate repetitive builds'"),
    ])


# -- the CAS build cache: what the ablation says ch-image was missing ------------

N_RUNS = ATSE_DOCKERFILE.count("RUN ")


def test_ablation_chimage_cold_vs_warm(login, alice):
    """A warm rebuild executes zero RUN instructions and ≥85% fewer
    syscalls than the cold build — the CI cache-smoke criterion.  (The
    syscall bar was ≥90% before the journal-driven snapshot walker cut
    the *cold* build's boundary walks to O(changed); the warm build's
    diff-apply syscalls are unchanged, the denominator just shrank.)"""
    ch = ChImage(login, alice, cache=True)
    tracer = attach_tracer(login.kernel)
    tracer.metrics.clear()
    cold = ch.build(tag=next(_tags), dockerfile=ATSE_DOCKERFILE, force=True)
    assert cold.success and cold.cache_hits == 0
    cold_syscalls = sum(tracer.metrics.syscalls.values())

    tracer.metrics.clear()
    warm = ch.build(tag=next(_tags), dockerfile=ATSE_DOCKERFILE, force=True)
    assert warm.success
    warm_syscalls = sum(tracer.metrics.syscalls.values())

    runs_executed = N_RUNS - warm.cache_hits
    assert warm.cache_hits == N_RUNS          # every RUN served from cache
    assert runs_executed <= N_RUNS * 0.10     # ≥90% fewer RUN instructions
    assert warm_syscalls <= cold_syscalls * 0.15  # ≥85% fewer syscalls
    assert dict(tracer.metrics.cache)["hit"] == N_RUNS
    report("A2 CAS cache: cold vs warm", [
        ("cold syscalls", str(cold_syscalls)),
        ("warm syscalls", str(warm_syscalls)),
        ("reduction", f"{(1 - warm_syscalls / cold_syscalls) * 100:.1f}%"),
        ("RUNs executed warm", f"{runs_executed}/{N_RUNS}"),
    ])


def test_ablation_shared_cache_seeds_fresh_node():
    """A cache exported to the site registry yields hits on every
    unchanged instruction for a builder that has never built anything."""
    world = make_world(arches=("x86_64",))
    ref = "gitlab.example.gov/alice/atse-cache:latest"

    node1 = make_machine("cn001", network=world.network)
    ch1 = ChImage(node1, node1.login("alice"), cache=True)
    t1 = attach_tracer(node1.kernel)
    cold = ch1.build(tag="atse", dockerfile=ATSE_DOCKERFILE, force=True)
    assert cold.success
    cold_syscalls = sum(t1.metrics.syscalls.values())
    registry = world.network.registry("gitlab.example.gov")
    ch1.cache.export_to_registry(registry, ref)

    node2 = make_machine("cn002", network=world.network)
    ch2 = ChImage(node2, node2.login("alice"), cache=True)
    installed = ch2.cache.import_from_registry(registry, ref)
    assert installed > 0
    t2 = attach_tracer(node2.kernel)
    warm = ch2.build(tag="atse", dockerfile=ATSE_DOCKERFILE, force=True)
    assert warm.success
    warm_syscalls = sum(t2.metrics.syscalls.values())

    assert warm.cache_hits == N_RUNS  # hits on every unchanged instruction
    report("A2 CAS cache: registry-seeded node", [
        ("records imported", str(installed)),
        ("cold syscalls (node 1)", str(cold_syscalls)),
        ("warm syscalls (node 2)", str(warm_syscalls)),
        ("note", "node 2 never executed a single RUN"),
    ])
