"""Ablation A7 (§3.2 option 1): sandboxed build systems vs building on the
HPC resource — the network-scoped-resources tradeoff."""

import itertools

from repro.cluster import EphemeralVmBuilder, make_machine
from repro.containers import Podman

from .conftest import report

LICENSED_DOCKERFILE = """\
FROM centos:7
RUN echo '[site]' > /etc/yum.repos.d/site.repo
RUN echo 'baseurl=repo://site/licensed-x86_64' >> /etc/yum.repos.d/site.repo
RUN echo 'enabled=1' >> /etc/yum.repos.d/site.repo
RUN yum install -y vendor-compiler
"""

PUBLIC_DOCKERFILE = "FROM centos:7\nRUN yum install -y openssh\n"

_tags = (f"t{i}" for i in itertools.count())


def test_ablation_sandbox_public_build(benchmark, world):
    builder = EphemeralVmBuilder(world)
    build = benchmark(lambda: builder.build(PUBLIC_DOCKERFILE, next(_tags)))
    assert build.success


def test_ablation_sandbox_vs_onsite_licensed(world):
    builder = EphemeralVmBuilder(world)
    sandbox_build = builder.build(LICENSED_DOCKERFILE, "lic")
    assert not sandbox_build.success  # license repo unreachable from the VM

    login = make_machine("site-login", network=world.network)
    podman = Podman(login, login.login("alice"))
    onsite = podman.build(LICENSED_DOCKERFILE, "lic")
    assert onsite.success, onsite.text

    report("A7 sandbox vs on-site", [
        ("sandbox VM, public pkg", "ok (privileged build, safely isolated)"),
        ("sandbox VM, licensed pkg", "FAILED: site repo unreachable"),
        ("HPC login node, licensed", "ok (on the site network)"),
        ("paper", "§3.2: isolated builders 'may not be able to access "
                  "needed resources, such as private code or licenses'"),
    ])
