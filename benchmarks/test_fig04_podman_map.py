"""Figure 4: the subuid file and the UID map rootless Podman sets up
(alice gets 65536 UIDs starting at her subordinate range)."""

from repro.containers import Podman

from .conftest import report


def test_fig04_rootless_podman_uid_map(benchmark, login, alice):
    podman = benchmark(lambda: Podman(login, alice.fork()))

    entries = podman.uid_map()
    assert entries[0].inside_start == 0
    assert entries[0].outside_start == 1000
    assert entries[0].count == 1
    assert entries[1].inside_start == 1
    assert entries[1].count == 65536

    subuid = login.root_sys().read_file("/etc/subuid").decode()
    assert any(line.startswith("alice:") and line.endswith(":65536")
               for line in subuid.splitlines())

    # The user namespace mapping cannot exceed max_user_namespaces (§4.1).
    assert login.kernel.sysctl["user.max_user_namespaces"] > 0

    report("Figure 4: Podman rootless UID map", [
        ("/etc/subuid", subuid.splitlines()[0]),
        ("uid_map", podman.uid_map_text().replace("\n", " | ").strip()),
        ("paper", "alice allocates 65536 UIDs via newuidmap/newgidmap"),
    ])
