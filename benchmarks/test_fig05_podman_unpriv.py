"""Figure 5: Podman in unprivileged mode — one UID mapped, and the
openssh-server install fails because /proc and /sys are owned by nobody."""

from repro.containers import Podman, enter_container
from repro.kernel import OVERFLOW_UID

from .conftest import report


def test_fig05_podman_unprivileged_mode(benchmark, login):
    bob = login.login("bob")
    podman = Podman(login, bob, unprivileged=True, ignore_chown_errors=True)

    # Single-UID map, as the figure lists.
    entries = podman.uid_map()
    assert len(entries) == 1 and entries[0].count == 1
    assert entries[0].outside_start == 1001

    def build():
        if "srv" in podman.buildah.images:
            del podman.buildah.images["srv"]
        if podman.buildah.driver.exists("build-srv"):
            podman.buildah.driver.delete("build-srv")
        return podman.build(
            "FROM centos:7\nRUN yum install -y openssh-server\n", "srv")

    result = benchmark(build)
    assert not result.success
    assert "Permission denied" in result.text

    # Verify the mechanism: /proc entries show as nobody inside.
    tree = podman.buildah.driver.image_path("centos:7")
    ctx = enter_container(bob, tree, "type3", dev_fs=login.dev_fs,
                          join_userns=podman.buildah._storage_proc.cred.userns)
    st = ctx.sys.stat("/proc/sys/net/ipv4/ip_forward")
    assert st.st_uid == OVERFLOW_UID

    report("Figure 5: Podman unprivileged mode", [
        ("uid_map", podman.uid_map_text().strip()),
        ("/proc owner inside", f"uid {st.st_uid} (nobody)"),
        ("openssh-server", "FAILED: Permission denied on /proc/sys write"),
        ("paper", "'will fail because /proc and /sys mappings in the "
                  "container are owned by user nobody'"),
    ])
