"""Ablation A4 (§6.1): Charliecloud pushes single-layer flattened images;
Podman pushes multi-layer OCI images.

Multi-layer wins on incremental pushes (unchanged layers are deduplicated
server-side); single-layer re-sends everything but is simpler and leaks no
site IDs.
"""

import itertools

from repro.containers import Podman, Registry
from repro.core import ChImage, push_image

from .conftest import ATSE_DOCKERFILE, report

_v = (f"v{i}" for i in itertools.count())

CHANGED = ATSE_DOCKERFILE + "RUN echo tweak > /etc/tweak.conf\n"


def test_ablation_podman_incremental_push(benchmark, login, alice, world):
    podman = Podman(login, alice)
    assert podman.build(ATSE_DOCKERFILE, "app").success
    assert podman.build(CHANGED, "app2").success
    podman.push("app", f"gitlab.example.gov/alice/app:{next(_v)}")

    def push_changed():
        return podman.push("app2",
                           f"gitlab.example.gov/alice/app:{next(_v)}")

    benchmark(push_changed)


def test_ablation_layer_push_economics(login, world):
    """Shape: after the first push, Podman's second push of a small change
    moves far fewer bytes than Charliecloud's single-layer re-push."""
    reg = world.site_registry

    podman = Podman(login, login.login("alice"))
    assert podman.build(ATSE_DOCKERFILE, "app").success
    assert podman.build(CHANGED, "app2").success
    podman.push("app", "gitlab.example.gov/alice/app:v1")
    before = reg.stats.bytes_pushed
    m = podman.push("app2", "gitlab.example.gov/alice/app:v2")
    podman_incremental = reg.stats.bytes_pushed - before
    assert m.layer_count > 1
    assert reg.stats.blobs_push_skipped >= 4  # base + 3 RUN layers reused

    ch = ChImage(login, login.login("bob"))
    assert ch.build(tag="app", dockerfile=ATSE_DOCKERFILE,
                    force=True).success
    assert ch.build(tag="app2", dockerfile=CHANGED, force=True).success
    push_image(ch.storage, "app", "gitlab.example.gov/bob/app:v1")
    before = reg.stats.bytes_pushed
    m2 = push_image(ch.storage, "app2", "gitlab.example.gov/bob/app:v2")
    ch_incremental = reg.stats.bytes_pushed - before
    assert m2.layer_count == 1

    assert podman_incremental < ch_incremental / 10
    report("A4 layer economics", [
        ("podman incremental push", f"{podman_incremental} bytes "
                                    f"({m.layer_count} layers, dedup)"),
        ("ch-image incremental push", f"{ch_incremental} bytes "
                                      "(1 flattened layer)"),
        ("ratio", f"{ch_incremental / max(1, podman_incremental):.0f}x"),
        ("paper", "§6.1: single-layer is a Charliecloud 'complication'; "
                  "flattening avoids leaking site IDs"),
    ])


def test_ablation_flattening_privacy(login, world):
    """What single-layer flattening buys: no site UIDs leak."""
    ch = ChImage(login, login.login("alice"))
    assert ch.build(tag="app", dockerfile=ATSE_DOCKERFILE,
                    force=True).success
    push_image(ch.storage, "app", "gitlab.example.gov/alice/app:flat")
    _, layers = world.site_registry.pull("alice/app:flat")
    uids = {m.uid for layer in layers for m in layer}
    assert uids == {0}  # nothing but root — alice's UID 1000 never leaks
