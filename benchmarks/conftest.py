"""Shared fixtures for the benchmark harness.

Each ``test_fig*``/``test_table*`` file regenerates one figure or table
from the paper's evaluation; ``test_ablation_*`` files measure the design
choices §4/§6 call out.  Timings are of the simulated substrate, so the
meaningful comparisons are *relative* (who wins, by what factor) plus the
qualitative outcomes (who fails, with which error).
"""

import json
import pathlib

import pytest

from repro.cluster import make_machine, make_world

#: where committed benchmark artifacts land (the repo root)
BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent

FIG2_DOCKERFILE = """\
FROM centos:7
RUN echo hello
RUN yum install -y openssh
"""

FIG3_DOCKERFILE = """\
FROM debian:buster
RUN echo hello
RUN apt-get update
RUN apt-get install -y openssh-client
"""

FIG8_DOCKERFILE = """\
FROM centos:7
RUN yum install -y epel-release
RUN yum install -y fakeroot
RUN echo hello
RUN fakeroot yum install -y openssh
"""

FIG9_DOCKERFILE = """\
FROM debian:buster
RUN echo 'APT::Sandbox::User "root";' > /etc/apt/apt.conf.d/no-sandbox
RUN echo hello
RUN apt-get update
RUN apt-get install -y pseudo
RUN fakeroot apt-get install -y openssh-client
"""

ATSE_DOCKERFILE = """\
FROM centos:7
RUN yum install -y gcc
RUN yum install -y openmpi hdf5
RUN yum install -y atse
"""


@pytest.fixture
def world():
    return make_world(arches=("x86_64",))


@pytest.fixture
def world_multiarch():
    return make_world()


@pytest.fixture
def login(world):
    return make_machine("login1", network=world.network)


@pytest.fixture
def alice(login):
    return login.login("alice")


def report(title: str, rows: list[tuple[str, str]]) -> None:
    """Print a paper-vs-measured block (shown with pytest -s or on failure)."""
    width = max(len(k) for k, _ in rows)
    print(f"\n### {title}")
    for key, value in rows:
        print(f"  {key.ljust(width)} : {value}")


def write_bench(name: str, payload: dict) -> pathlib.Path:
    """Write the committed ``BENCH_<name>.json`` artifact a smoke CI job
    gates on.  One emitter for every ``test_scaling_*`` file: stable key
    order, 2-space indent, trailing newline — so regenerated artifacts
    diff cleanly."""
    path = BENCH_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
