"""Ablation A1 (§4.1): "Podman can also use the VFS driver, however this
implementation is much slower and has significant storage overhead."

Same build under vfs and overlay; compare copied bytes, storage at rest,
and wall time.
"""

import itertools

import pytest

from repro.containers import Podman

from .conftest import ATSE_DOCKERFILE, report

_tag = (f"atse-{i}" for i in itertools.count())


@pytest.mark.parametrize("driver", ["vfs", "overlay"])
def test_ablation_storage_driver_build(benchmark, login, driver):
    user = "alice" if driver == "vfs" else "bob"
    podman = Podman(login, login.login(user), driver=driver,
                    layers_cache=False)

    def build():
        return podman.build(ATSE_DOCKERFILE, next(_tag))

    result = benchmark(build)
    assert result.success, result.text
    stats = podman.buildah.driver.stats
    report(f"A1 storage driver: {driver}", [
        ("bytes copied", str(stats.bytes_copied)),
        ("storage at rest", str(stats.storage_bytes)),
        ("meta ops", str(stats.meta_ops)),
    ])


def test_ablation_storage_driver_comparison(login):
    """The paper's qualitative claim as hard numbers."""
    vfs = Podman(login, login.login("alice"), driver="vfs",
                 layers_cache=False)
    ovl = Podman(login, login.login("bob"), driver="overlay",
                 layers_cache=False)
    r1 = vfs.build(ATSE_DOCKERFILE, "a")
    r2 = ovl.build(ATSE_DOCKERFILE, "b")
    assert r1.success and r2.success
    v, o = vfs.buildah.driver.stats, ovl.buildah.driver.stats
    # vfs duplicates the tree per instruction; overlay stores diffs.
    assert v.storage_bytes > 5 * o.storage_bytes
    assert v.bytes_copied > 2 * o.bytes_copied
    # simulated cost model (metadata + byte charges, incl. FUSE overhead)
    v_cost = vfs.buildah.driver.simulated_cost()
    o_cost = ovl.buildah.driver.simulated_cost()
    assert v_cost > o_cost
    report("A1 verdict", [
        ("vfs storage", str(v.storage_bytes)),
        ("overlay storage", str(o.storage_bytes)),
        ("ratio", f"{v.storage_bytes / max(1, o.storage_bytes):.1f}x"),
        ("simulated cost vfs/ovl", f"{v_cost:.0f} / {o_cost:.0f}"),
        ("paper", "vfs 'much slower and has significant storage overhead'"),
    ])
