"""Matrix scaling: cache amplification on the 64-cell example family.

The committed ``examples/matrix_family.spec`` (2 bases × 4 MPI flavors ×
8 frameworks) is the tentpole's acceptance fixture.  Its template is
layered so the Merkle planner can collapse it: 384 stage builds across
the 64 cells fold to 86 unique chains — predicted amplification 4.47×,
and the prediction is *exact*: on a cold shared cache the farm records
one diff store per unique stage build, no more.

Gates (mirrored by the ``matrix-smoke`` CI job):

* cache amplification >= 3x on the 64-cell family;
* every variant digest identical to its sequentially built counterpart
  (a fresh ``--parallelism 1`` world) — scheduling changes *when*,
  never *what*;
* measured cold-cache stores == the plan's unique stage builds.

Emits ``BENCH_matrix.json``, the committed baseline the CI job compares
against.
"""

import pathlib

from repro.cluster import make_machine, make_world
from repro.cluster.fleet import RegistryFleet
from repro.matrix import build_matrix, parse_spec_text, plan_matrix

from .conftest import report, write_bench

SPEC_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "examples" / "matrix_family.spec"

PARALLELISM_LEVELS = (1, 8)

AMPLIFICATION_GATE = 3.0


def family_spec():
    return parse_spec_text(SPEC_PATH.read_text())


def run_matrix(parallelism: int, *, fleet=None, token=None):
    """One cold-cache matrix run in a fresh world."""
    spec = family_spec()
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    return build_matrix(login, login.login("alice"), spec,
                        parallelism=parallelism, fleet=fleet, token=token)


def test_scaling_matrix_amplification():
    """The tentpole gate: >= 3x amplification, digest identity vs the
    sequential per-variant baseline, plan == measurement; emits the
    BENCH_matrix.json artifact CI gates on."""
    spec = family_spec()
    plan = plan_matrix(spec)
    assert plan.n_cells >= 64
    assert plan.amplification >= AMPLIFICATION_GATE, plan.as_dict()

    runs = {}
    for n in PARALLELISM_LEVELS:
        fleet = RegistryFleet("site", n_shards=4, replicas=2) if n > 1 \
            else None
        rep = run_matrix(n, fleet=fleet, token="s3cret")
        assert rep.success, [c.error for c in rep.cells if not c.success]
        # the static plan is exact on a cold cache: one store per unique
        # stage build, regardless of parallelism
        assert rep.measured_stores == plan.unique_stage_builds, \
            (n, rep.measured_stores, plan.unique_stage_builds)
        runs[n] = rep

    # digest identity: every variant equals its sequentially built
    # counterpart — the farm schedule changes *when*, never *what*
    sequential, parallel = runs[1].digests(), runs[8].digests()
    assert sequential == parallel
    assert len(sequential) == plan.n_cells

    # parallelism pays: 8 workers on 64 independent cells beat serial
    speedup = runs[1].makespan / runs[8].makespan
    assert speedup > 1.0, (runs[1].makespan, runs[8].makespan)

    # the family landed in the fleet under the spec's tenant
    pushed = runs[8]
    assert pushed.pushed == plan.n_cells
    assert pushed.fleet_report is not None
    assert pushed.tenant == spec.tenant

    write_bench("matrix", {
        "benchmark": "matrix-scaling",
        "fixture": "examples/matrix_family.spec",
        "cells": plan.n_cells,
        "unique_cell_builds": plan.unique_cell_builds,
        "total_stage_builds": plan.total_stage_builds,
        "unique_stage_builds": plan.unique_stage_builds,
        "amplification": round(plan.amplification, 6),
        "amplification_gate": AMPLIFICATION_GATE,
        "sharing_histogram": {
            str(k): v for k, v in plan.sharing_histogram().items()},
        "measured_stores": runs[8].measured_stores,
        "measured_hits": runs[8].measured_hits,
        "makespan_seconds": {str(n): runs[n].makespan
                             for n in PARALLELISM_LEVELS},
        "parallel_speedup": round(speedup, 6),
        "digests_identical": True,
        "pushed": pushed.pushed,
        "tenant": spec.tenant,
    })

    report("Build-matrix scaling (64-cell base x MPI x framework)", [
        ("cells", f"{plan.n_cells} "
                  f"({plan.unique_cell_builds} unique images)"),
        ("stage builds", f"{plan.total_stage_builds} -> "
                         f"{plan.unique_stage_builds} unique"),
        ("amplification", f"{plan.amplification:.2f}x "
                          f"(gate: >= {AMPLIFICATION_GATE}x)"),
        ("plan vs measured", f"{plan.unique_stage_builds} predicted == "
                             f"{runs[8].measured_stores} stores"),
        ("digests", "identical at parallelism 1 and 8"),
        ("speedup", f"{speedup:.2f}x at parallelism 8"),
        ("pushed", f"{pushed.pushed} images as tenant {spec.tenant!r}"),
    ])


def test_scaling_matrix_amplification_grows_with_depth():
    """Amplification scales with how much of the template is shared:
    widening the per-cell tail dilutes it, deepening the shared prefix
    concentrates it.  (A quick sanity sweep, not a gate.)"""
    spec = family_spec()
    base_amp = plan_matrix(spec).amplification

    # appending a per-cell instruction dilutes sharing
    diluted_spec = parse_spec_text(
        SPEC_PATH.read_text().rstrip("\n")
        + "\n  RUN echo package ${fw}+${mpi} > /opt/site/manifest\n")
    diluted = plan_matrix(diluted_spec).amplification
    assert diluted < base_amp

    # single-flight identity: identical dockerfiles share whole-image
    # plan keys only when cells really render identically — here none do
    plan = plan_matrix(spec)
    assert plan.unique_cell_builds == plan.n_cells
