"""Cold-build scaling: the journal-walker ablation on a 10k-file image.

A cache-enabled cold build snapshots the image tree at every instruction
boundary to derive cache keys and layer diffs.  The reference oracle
packs and hashes the whole tree each time — O(tree x instructions).  The
incremental walker consults the VFS change journal and re-hashes only
what changed — O(tree + changes).  This benchmark builds a Dockerfile of
``N_INSTRUCTIONS`` small RUNs on a ``N_FILES``-file base image both
ways, asserting **bit-identical** image trees, cache keys, and cached
diff blobs while timing the two, and gates on the walker being
**>= 5x** faster end-to-end.

Emits ``BENCH_coldbuild.json`` for the ``coldbuild-smoke`` CI job, which
gates on speedup no worse than 0.9x the committed baseline plus digest
identity.
"""

import time

from repro.cas.diff import snapshot_digest, snapshot_tree
from repro.cluster import make_machine, make_world
from repro.core import ChImage
from repro.sim import reference_engine
from repro.sim.profile import COUNTERS

from .conftest import report, write_bench

BASE = "bigbase:1"
N_DIRS = 100
FILES_PER_DIR = 100
N_FILES = N_DIRS * FILES_PER_DIR
N_INSTRUCTIONS = 12

DOCKERFILE = f"FROM {BASE}\n" + "".join(
    f"RUN echo build-step-{i} > /out{i}.txt\n"
    for i in range(N_INSTRUCTIONS))


def _make_base(storage) -> None:
    """Materialize the base image directly in storage (``pull`` returns
    early for images already present) with a pinned identity digest, the
    way a registry pull would record the manifest digest: a centos:7
    userland plus ``N_FILES`` library files."""
    storage.pull("centos:7")
    storage.copy("centos:7", BASE)
    path = storage.path_of(BASE)
    sys = storage.sys
    for d in range(N_DIRS):
        dirpath = f"{path}/pkg{d:03d}"
        sys.mkdir(dirpath, 0o755)
        for f in range(FILES_PER_DIR):
            sys.write_file(f"{dirpath}/lib{f:03d}.so",
                           f"elf {d}/{f} ".encode() * 8)
    storage.set_digest(BASE, "sha256:" + "ab" * 32)


def _cold_build():
    """One fresh world, one cold cache-enabled build; returns the
    builder, wall seconds, image tree digest, and counter deltas."""
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    alice = login.login("alice")
    ch = ChImage(login, alice, cache=True)
    _make_base(ch.storage)
    before = COUNTERS.snapshot()
    t0 = time.perf_counter()
    result = ch.build(tag="app", dockerfile=DOCKERFILE)
    seconds = time.perf_counter() - t0
    counts = COUNTERS.delta(before)
    assert result.success, result.text
    snap = snapshot_tree(ch.sys, ch.storage.path_of("app"))
    return ch, seconds, snapshot_digest(snap), len(snap), counts


class TestColdBuildScaling:
    def test_journal_walker_vs_reference(self):
        ch_opt, opt_seconds, opt_digest, members, opt_counts = _cold_build()
        with reference_engine():
            ch_ref, ref_seconds, ref_digest, _m, ref_counts = _cold_build()

        # identity first: the speedup is meaningless if the results drift
        assert opt_digest == ref_digest
        assert ch_opt.cache.keys() == ch_ref.cache.keys()
        assert sorted(r.diff_digest
                      for r in ch_opt.cache.records.values()) == \
            sorted(r.diff_digest for r in ch_ref.cache.records.values())

        hashed_opt = opt_counts.get("digest.memo_miss", 0)
        speedup = ref_seconds / opt_seconds
        # everything hashed beyond the one base walk is boundary cost
        # (the base walk covers the final tree minus the 12 RUN outputs)
        boundary_hashed = hashed_opt - (members - N_INSTRUCTIONS)
        per_inst_opt = boundary_hashed / N_INSTRUCTIONS
        report(f"cold build, {N_FILES} files x {N_INSTRUCTIONS} RUNs", [
            ("reference walks", str(ref_counts.get("snapshot.walk_full",
                                                   0))),
            ("walker full walks", str(opt_counts.get("snapshot.walk_full",
                                                     0))),
            ("walker dirty dirs", str(opt_counts.get("snapshot.walk_dirty",
                                                     0))),
            ("spliced entries", str(opt_counts.get("snapshot.splice", 0))),
            ("members hashed (walker)", str(hashed_opt)),
            ("hashed per boundary", f"{per_inst_opt:.1f}"),
            ("reference seconds", f"{ref_seconds:.2f}"),
            ("walker seconds", f"{opt_seconds:.2f}"),
            ("speedup", f"{speedup:.1f}x"),
        ])
        write_bench("coldbuild", {
            "files": N_FILES,
            "instructions": N_INSTRUCTIONS,
            "reference_seconds": round(ref_seconds, 3),
            "walker_seconds": round(opt_seconds, 3),
            "speedup": round(speedup, 2),
            "members_hashed_walker": hashed_opt,
            "hashed_per_boundary": round(per_inst_opt, 1),
            "reference_full_walks": ref_counts.get("snapshot.walk_full", 0),
            "walker_full_walks": opt_counts.get("snapshot.walk_full", 0),
            "walker_dirty_dirs": opt_counts.get("snapshot.walk_dirty", 0),
            "digest_identical": opt_digest == ref_digest,
        })
        # the tentpole gate: an order-of-magnitude class win, asserted
        # conservatively so slow CI machines don't flake
        assert speedup >= 5.0, (
            f"cold-build speedup {speedup:.1f}x < 5x "
            f"(ref {ref_seconds:.2f}s, walker {opt_seconds:.2f}s)")
