"""Ablation A8 (§6.2.4): future kernel ID-map mechanisms.

With kernel-granted guaranteed-unique subordinate ranges
(``user.autosub_userns``), an unprivileged build needs neither the Type II
helper tools nor the Type III fakeroot wrapper — "general policies could be
implemented such as 'host UID maps to container root and guaranteed-unique
host UIDs map to all other container UIDs'".
"""

import itertools

from repro.cluster import make_machine
from repro.core import ChImage

from .conftest import FIG2_DOCKERFILE, report

_tags = (f"t{i}" for i in itertools.count())


def test_ablation_future_kernel_build(benchmark, world):
    login = make_machine("future", network=world.network)
    login.kernel.sysctl["user.autosub_userns"] = 1
    ch = ChImage(login, login.login("alice"), auto_map=True)

    result = benchmark(lambda: ch.build(tag=next(_tags),
                                        dockerfile=FIG2_DOCKERFILE))
    assert result.success, result.text
    assert "fakeroot" not in result.text


def test_ablation_three_mechanisms_compared(world):
    """Today's Type III (--force/fakeroot) vs today's Type II (helpers) vs
    the §6.2.4 future kernel — same Dockerfile."""
    login = make_machine("cmp", network=world.network)
    alice = login.login("alice")

    plain = ChImage(login, alice).build(tag="p",
                                        dockerfile=FIG2_DOCKERFILE)
    forced = ChImage(login, alice).build(tag="f",
                                         dockerfile=FIG2_DOCKERFILE,
                                         force=True)
    login.kernel.sysctl["user.autosub_userns"] = 1
    future = ChImage(login, alice, auto_map=True).build(
        tag="k", dockerfile=FIG2_DOCKERFILE)

    assert not plain.success
    assert forced.success and forced.modified_runs == 1
    assert future.success and "fakeroot" not in future.text

    report("A8 future-kernel ID maps", [
        ("Type III plain", "FAILED (cpio: chown)"),
        ("Type III --force", "ok, 1 RUN wrapped in fakeroot"),
        ("future kernel map", "ok, no wrapper, no helpers, correct "
                              "in-image ownership"),
        ("paper", "§6.2.4: kernel mechanisms could 'expand the utility of "
                  "unprivileged maps'"),
    ])
