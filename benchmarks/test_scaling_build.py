"""Build scaling: makespan vs parallelism for the parallel build engine.

Three shapes, all on the sim clock so the numbers are deterministic:

* **Diamond multi-stage build** (base -> left|right -> final): stage-DAG
  scheduling overlaps the two branches, so N>=2 workers land at the
  critical path while N=1 pays the serial sum — the acceptance gate is
  parallel (N=4) makespan <= 0.6x sequential with byte-identical images.
* **Independent CI images** on a :class:`~repro.cluster.BuildFarm`:
  near-linear scaling until the worker pool saturates.
* **Duplicate CI images**: single-flight dedup collapses the duplicate
  work — one execution, the rest wait and replay warm (``inflight_hits``).

``test_ablation_build_parallelism`` also emits ``BENCH_build.json`` (the
makespan trajectory) for the ``build-scaling-smoke`` CI job.
"""

import pytest

from repro.cas import snapshot_digest, snapshot_tree
from repro.cluster import BuildFarm, make_machine, make_world
from repro.core import ChImage, build_parallel

from .conftest import report, write_bench

#: the diamond 4-stage fixture: branches diverge on their first echo (so
#: their cache chains differ) then do identical-cost heavy installs,
#: keeping the two branches balanced — the shape where DAG scheduling
#: pays off most and dedup must NOT kick in.
DIAMOND_DOCKERFILE = """\
FROM centos:7 AS base
RUN echo base > /base.txt

FROM base AS left
RUN echo left > /left.txt
RUN yum install -y openssh
RUN yum install -y openmpi hdf5

FROM base AS right
RUN echo right > /right.txt
RUN yum install -y openssh
RUN yum install -y openmpi hdf5

FROM base
COPY --from=left /left.txt /l
COPY --from=right /right.txt /r
RUN echo done
"""

PARALLELISM_LEVELS = (1, 2, 4)


def fresh_builder() -> ChImage:
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    ch = ChImage(login, login.login("alice"), force_mode="seccomp",
                 cache=True)
    # pre-pull so the measured makespan is build work, not registry I/O
    ch.pull("centos:7")
    return ch


def diamond_build(parallelism: int):
    ch = fresh_builder()
    result = build_parallel(ch, tag="app", dockerfile=DIAMOND_DOCKERFILE,
                            force=True, parallelism=parallelism)
    assert result.success, result.text
    digest = snapshot_digest(snapshot_tree(ch.sys,
                                           ch.storage.path_of("app")))
    return result, digest


def farm_image(i: int) -> str:
    return (f"FROM centos:7\n"
            f"RUN echo img{i} > /img.txt\n"
            f"RUN yum install -y openssh\n"
            f"RUN yum install -y openmpi hdf5\n")


def fresh_farm(parallelism: int) -> BuildFarm:
    world = make_world(arches=("x86_64",))
    login = make_machine("login1", network=world.network)
    farm = BuildFarm(login, login.login("alice"), parallelism=parallelism,
                     force_mode="seccomp")
    farm.builder.pull("centos:7")
    return farm


@pytest.mark.parametrize("parallelism", list(PARALLELISM_LEVELS))
def test_scaling_build(benchmark, parallelism):
    result, _ = benchmark.pedantic(diamond_build, args=(parallelism,),
                                   rounds=1, iterations=1)
    assert result.parallelism == parallelism
    assert result.makespan >= result.critical_path > 0.0
    assert result.schedule.success
    if parallelism > 1:
        # both branches really overlapped on distinct workers
        by_name = {t.name: t for t in result.schedule.tasks}
        left, right = by_name["app:left"], by_name["app:right"]
        assert left.worker != right.worker
        assert left.start < right.finish and right.start < left.finish


def test_ablation_build_parallelism():
    """The acceptance gate: N=4 makespan <= 0.6x sequential on the
    diamond, byte-identical digests at every level; emits the
    BENCH_build.json trajectory for CI."""
    makespan = {}
    critical_path = {}
    digests = set()
    for n in PARALLELISM_LEVELS:
        result, digest = diamond_build(n)
        makespan[n] = result.makespan
        critical_path[n] = result.critical_path
        digests.add(digest)

    # determinism under concurrency: the image does not depend on N
    assert len(digests) == 1
    # no parallelism level beats the DAG's critical path
    for n in PARALLELISM_LEVELS:
        assert makespan[n] >= critical_path[n] - 1e-12
    # monotone: more workers never slows the build
    assert makespan[4] <= makespan[2] <= makespan[1]
    # the tentpole gate
    ratio = makespan[4] / makespan[1]
    assert ratio <= 0.6, f"parallel/sequential makespan ratio {ratio:.3f}"
    # 2 balanced branches: N=2 already reaches the critical path
    assert makespan[2] == pytest.approx(critical_path[2])

    write_bench("build", {
        "benchmark": "build-scaling",
        "fixture": "diamond-4-stage",
        "parallelism_levels": list(PARALLELISM_LEVELS),
        "makespan_seconds": {str(n): makespan[n]
                             for n in PARALLELISM_LEVELS},
        "critical_path_seconds": {str(n): critical_path[n]
                                  for n in PARALLELISM_LEVELS},
        "parallel_over_sequential": ratio,
        "digests_identical": True,
    })

    report("Build scaling ablation (diamond multi-stage)", [
        *((f"makespan N={n}",
           f"{makespan[n] * 1e6:8.2f} us (critical path "
           f"{critical_path[n] * 1e6:.2f} us)")
          for n in PARALLELISM_LEVELS),
        ("parallel/sequential", f"{ratio:.3f} (gate: <= 0.6)"),
        ("image digests", "identical across all parallelism levels"),
    ])


def test_scaling_farm_independent_images():
    """Independent images scale near-linearly until workers saturate."""
    makespans = {}
    for parallelism in (1, 4):
        farm = fresh_farm(parallelism)
        for i in range(4):
            farm.submit(tag=f"img{i}", dockerfile=farm_image(i),
                        force=True)
        rep = farm.run()
        assert rep.success
        assert rep.inflight_hits == 0  # distinct images: no dedup
        makespans[parallelism] = rep.makespan
    speedup = makespans[1] / makespans[4]
    assert speedup >= 3.0, f"speedup {speedup:.2f} not near-linear"
    report("Build farm scaling (4 independent images)", [
        ("makespan N=1", f"{makespans[1] * 1e6:.2f} us"),
        ("makespan N=4", f"{makespans[4] * 1e6:.2f} us"),
        ("speedup", f"{speedup:.2f}x (near-linear, 4 workers, 4 images)"),
    ])


def test_scaling_farm_dedup_collapse():
    """Duplicate images single-flight: the second identical concurrent
    build waits on the first instead of redoing it (the acceptance
    criterion's ``inflight_hits > 0``)."""
    distinct = fresh_farm(4)
    for i in range(4):
        distinct.submit(tag=f"img{i}", dockerfile=farm_image(i), force=True)
    distinct_rep = distinct.run()

    dup = fresh_farm(4)
    for i in range(4):
        dup.submit(tag=f"copy{i}", dockerfile=farm_image(0), force=True)
    dup_rep = dup.run()

    assert dup_rep.success
    assert dup_rep.inflight_hits == 3          # one leader, three waiters
    assert dup_rep.cache_stats.inflight_hits == 3
    # the duplicate work collapsed: every instruction executed (and was
    # committed to the cache) exactly once; the followers replayed as
    # pure cache hits after waiting out the leader's flight
    assert dup_rep.cache_stats.stores == 3      # one image's instructions
    assert distinct_rep.cache_stats.stores == 12
    leader, *followers = dup_rep.images
    assert not leader.deduped and leader.result.cache_hits == 0
    for f in followers:
        assert f.deduped and f.result.cache_hits == 3
    # the three warm replays run concurrently, not chained behind each
    # other: all start exactly when the leader's flight lands
    lead_task, *follow_tasks = dup_rep.schedule.tasks
    assert all(t.start == lead_task.finish for t in follow_tasks)
    # every tag still exists and is byte-identical to the leader's image
    digests = {
        snapshot_digest(snapshot_tree(
            dup.builder.sys, dup.builder.storage.path_of(f"copy{i}")))
        for i in range(4)}
    assert len(digests) == 1
    report("Build farm single-flight dedup (4x the same image)", [
        ("inflight hits", str(dup_rep.inflight_hits)),
        ("cache stores 4 distinct", str(distinct_rep.cache_stats.stores)),
        ("cache stores 4 duplicates",
         f"{dup_rep.cache_stats.stores} (each instruction ran once)"),
        ("images", "all four tags byte-identical"),
    ])
