"""Figure 9: the Debian 10 Dockerfile modified by hand (sandbox off,
pseudo installed, fakeroot wrapping) builds successfully, with the
non-fatal term.log chown warning."""

from repro.core import ChImage

from .conftest import FIG9_DOCKERFILE, report


def test_fig09_debian_manual_fakeroot(benchmark, login, alice):
    ch = ChImage(login, alice)

    def build():
        if ch.storage.exists("foo"):
            ch.storage.delete("foo")
        return ch.build(tag="foo", dockerfile=FIG9_DOCKERFILE)

    result = benchmark(build)

    assert result.success, result.text
    text = result.text
    assert "Setting up pseudo (1.9.0+git20180920-1) ..." in text
    assert "W: chown to root:adm of file /var/log/apt/term.log failed" in text
    assert "Setting up openssh-client (1:7.9p1-10+deb10u2) ..." in text
    assert "Setting up libxext6 (2:1.3.3-1+b2) ..." in text
    assert "Setting up xauth (1:1.0.10-1) ..." in text
    assert "Processing triggers for libc-bin (2.28-10) ..." in text
    assert "grown in 6 instructions: foo" in text

    report("Figure 9: Debian manual workarounds build", [
        ("sandbox", "disabled via APT::Sandbox::User root"),
        ("pseudo", "installed without fakeroot; term.log warning only"),
        ("openssh-client", "installed under fakeroot: success"),
        ("warning fatal?", "no — 'these warnings do not fail the build'"),
        ("paper", "Fig. 9 lines 18-28 incl. the W: line at 21"),
    ])
