"""Figure 3: the Debian 10 Dockerfile fails in a basic Type III container —
apt-get's privilege drop hits setgroups EPERM and seteuid EINVAL."""

from repro.core import ChImage

from .conftest import FIG3_DOCKERFILE, report


def test_fig03_debian_type3_build_fails(benchmark, login, alice):
    ch = ChImage(login, alice)

    def build():
        ch.storage.delete("foo") if ch.storage.exists("foo") else None
        return ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE)

    result = benchmark(build)

    assert not result.success
    text = result.text
    assert ("E: setgroups 65534 failed - setgroups "
            "(1: Operation not permitted)") in text
    assert ("E: seteuid 100 failed - seteuid "
            "(22: Invalid argument)") in text
    assert "error: build failed: RUN command exited with 100" in text

    report("Figure 3: Debian 10 Type III failure", [
        ("setgroups 65534", "EPERM 1 (not permitted in unprivileged userns)"),
        ("seteuid 100", "EINVAL 22 (uid 100 unmapped)"),
        ("exit", "RUN command exited with 100"),
        ("paper", "identical errno values, Fig. 3 lines 11-15"),
    ])
