"""Figure 11: ch-image --force builds the *unmodified* Debian 10 Dockerfile
via the debderiv config (two init steps, two modified RUNs)."""

from repro.core import ChImage

from .conftest import FIG3_DOCKERFILE, report


def test_fig11_force_debian(benchmark, login, alice):
    ch = ChImage(login, alice)

    def build():
        if ch.storage.exists("foo"):
            ch.storage.delete("foo")
        return ch.build(tag="foo", dockerfile=FIG3_DOCKERFILE, force=True)

    result = benchmark(build)

    assert result.success, result.text
    text = result.text
    assert ("will use --force: debderiv: Debian (9, 10) or Ubuntu "
            "(16, 18, 20)") in text
    assert ("workarounds: init step 1: checking: $ apt-config dump | "
            "fgrep -q 'APT::Sandbox::User \"root\"' || ! fgrep -q _apt "
            "/etc/passwd") in text
    assert ("workarounds: init step 1: $ echo 'APT::Sandbox::User "
            "\"root\";' > /etc/apt/apt.conf.d/no-sandbox") in text
    assert ("workarounds: init step 2: checking: $ command -v fakeroot > "
            "/dev/null") in text
    assert ("workarounds: init step 2: $ apt-get update && apt-get install "
            "-y pseudo") in text
    assert "Setting up pseudo (1.9.0+git20180920-1) ..." in text
    assert ("workarounds: RUN: new command: ['fakeroot', '/bin/sh', '-c', "
            "'apt-get update']") in text
    assert "--force: init OK & modified 2 RUN instructions" in text
    assert "grown in 4 instructions: foo" in text
    assert result.modified_runs == 2

    report("Figure 11: ch-image --force (Debian)", [
        ("detection", "debderiv via /etc/os-release 'buster'"),
        ("init step 1", "APT sandbox disabled by config file"),
        ("init step 2", "apt-get update && install pseudo"),
        ("modified RUNs", str(result.modified_runs)),
        ("paper", "'--force: init OK & modified 2 RUN instructions'"),
    ])
