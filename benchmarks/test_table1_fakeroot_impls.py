"""Table 1: the three fakeroot implementations — metadata columns plus a
live capability probe of the properties the columns imply."""

import pytest

from repro.cluster import make_machine
from repro.fakeroot import ENGINES, FakerootError, FakerootSyscalls
from repro.kernel import FileType, Syscalls

from .conftest import report

EXPECTED = {
    "fakeroot": ("LD_PRELOAD", "any", "yes", "save/restore from file"),
    "fakeroot-ng": ("ptrace", "ppc, x86, x86_64", "yes",
                    "save/restore from file"),
    "pseudo": ("LD_PRELOAD", "any", "yes", "database"),
}


def test_table1_static_columns(benchmark):
    rows = benchmark(lambda: {e.name: e.table_row()
                              for e in ENGINES.values()})
    for name, (approach, arches, daemon, persistency) in EXPECTED.items():
        row = rows[name]
        assert row["approach"] == approach
        assert row["architectures"] == arches
        assert row["daemon?"] == daemon
        assert row["persistency"] == persistency
    report("Table 1: fakeroot implementations", [
        (name, " | ".join(v for k, v in row.items()
                          if k != "implementation"))
        for name, row in rows.items()
    ])


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_table1_live_probe(world, engine_name):
    """Probe each engine's behaviour: basic lying works everywhere the
    engine runs; arch restrictions bind for ptrace."""
    engine = ENGINES[engine_name]
    for arch in ("x86_64", "aarch64"):
        m = make_machine(f"probe-{arch}", arch=arch, network=world.network)
        alice = m.login("alice")
        sys = Syscalls(alice)
        if engine.supports_arch(arch):
            fr = FakerootSyscalls(sys, engine)
            fr.write_file("/home/alice/f", b"")
            fr.chown("/home/alice/f", 0, 0)
            fr.mknod("/home/alice/dev", FileType.CHR, rdev=(1, 1))
            assert fr.stat("/home/alice/f").st_uid == 0
            assert fr.stat("/home/alice/dev").ftype is FileType.CHR
        else:
            with pytest.raises(FakerootError):
                FakerootSyscalls(sys, engine)


def test_table1_persistence_styles(world):
    """fakeroot/fakeroot-ng save-restore vs pseudo's always-on database."""
    m = make_machine("persist", network=world.network)
    alice = m.login("alice")
    sys = Syscalls(alice)
    classic = FakerootSyscalls(sys, ENGINES["fakeroot"])
    classic.write_file("/home/alice/f", b"")
    classic.chown("/home/alice/f", 7, 7)
    classic.save_state("/home/alice/state")
    fresh = FakerootSyscalls(sys, ENGINES["fakeroot"])
    assert fresh.stat("/home/alice/f").st_uid == 0  # lies don't carry over
    fresh.load_state("/home/alice/state")
    assert fresh.stat("/home/alice/f").st_uid == 7  # until explicitly loaded
