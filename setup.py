"""Compatibility shim for environments without PEP 660 editable-install
support (e.g. no `wheel` package available offline).

`pip install -e .` uses pyproject.toml where possible; on minimal systems,
`python setup.py develop --user` or adding `src/` to a .pth file works the
same — the package is pure Python with no build step.
"""

from setuptools import setup

setup()
